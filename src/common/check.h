#pragma once

/// \file check.h
/// \brief Always-on and debug-only invariant checks with formatted fatal
/// messages.
///
/// HGMINE_CHECK(cond) aborts with file:line, the failed condition, and any
/// streamed context when \p cond is false.  Unlike <cassert> the message is
/// formatted (operator<< accepts anything ostream does) and the check stays
/// active in release builds, so it guards cheap, load-bearing invariants
/// (parser sanity, engine preconditions).
///
/// HGMINE_DCHECK(cond) compiles to nothing in optimized builds but becomes
/// a full HGMINE_CHECK in Debug builds and under -DHGMINE_AUDIT=ON, where
/// the whole paper-contract audit layer is live (see core/audit.h).  The
/// condition is never evaluated when disabled but must always compile, so
/// bit-rot in checks is a build error, not a latent surprise.
///
/// \code
///   HGMINE_CHECK(edge.size() == num_vertices_)
///       << "edge universe " << edge.size() << " vs " << num_vertices_;
///   HGMINE_DCHECK_LE(begin, end);
/// \endcode

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>

namespace hgm {
namespace internal {

/// Observer invoked with the formatted message just before a failed
/// HGMINE_CHECK aborts.  The observability layer installs the flight
/// recorder's dump here (obs/flight_recorder.h: InstallCrashHandlers),
/// so a crashing run leaves its last structural events on disk.  The
/// hook must be async-termination-safe: no throwing, no relying on the
/// process surviving.  check.h stays dependency-free — the hook is a
/// plain function pointer slot, not an obs include.
using CheckFailureHook = void (*)(const char* message);

inline std::atomic<CheckFailureHook>& CheckFailureHookSlot() {
  static std::atomic<CheckFailureHook> hook{nullptr};
  return hook;
}

/// Installs \p hook (nullptr restores "abort silently, message only").
inline void SetCheckFailureHook(CheckFailureHook hook) {
  CheckFailureHookSlot().store(hook, std::memory_order_relaxed);
}

/// Accumulates the failure message and aborts when destroyed (at the end
/// of the full check expression, after all streamed context is appended).
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    os_ << file << ":" << line << ": HGMINE_CHECK failed: " << condition;
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    const std::string message = os_.str();
    std::cerr << message << std::endl;
    if (CheckFailureHook hook =
            CheckFailureHookSlot().load(std::memory_order_relaxed)) {
      hook(message.c_str());
    }
    std::abort();
  }

  /// The stream further context is appended to.
  std::ostream& stream() { return os_; }

 private:
  std::ostringstream os_;
};

/// Lower-precedence-than-<< void conversion, so a check expands to a single
/// expression usable inside `if` without braces (the glog voidify idiom).
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace hgm

#define HGMINE_CHECK(condition)               \
  (condition) ? (void)0                       \
              : ::hgm::internal::Voidify() &  \
                    ::hgm::internal::CheckFailure(__FILE__, __LINE__, \
                                                  #condition)         \
                        .stream()

#define HGMINE_CHECK_OP(op, a, b)                                         \
  ((a)op(b)) ? (void)0                                                    \
             : ::hgm::internal::Voidify() &                               \
                   ::hgm::internal::CheckFailure(__FILE__, __LINE__,      \
                                                 #a " " #op " " #b)       \
                           .stream()                                      \
                       << " (" << (a) << " vs " << (b) << ")"

#define HGMINE_CHECK_EQ(a, b) HGMINE_CHECK_OP(==, a, b)
#define HGMINE_CHECK_NE(a, b) HGMINE_CHECK_OP(!=, a, b)
#define HGMINE_CHECK_LE(a, b) HGMINE_CHECK_OP(<=, a, b)
#define HGMINE_CHECK_LT(a, b) HGMINE_CHECK_OP(<, a, b)
#define HGMINE_CHECK_GE(a, b) HGMINE_CHECK_OP(>=, a, b)
#define HGMINE_CHECK_GT(a, b) HGMINE_CHECK_OP(>, a, b)

// Debug checks are live in Debug builds and audit builds.  When disabled
// the `while (false)` prefix keeps the condition compiled (odr-used, so it
// cannot rot) without ever evaluating it.
#if defined(HGMINE_AUDIT) || !defined(NDEBUG)
#define HGMINE_DCHECK(condition) HGMINE_CHECK(condition)
#define HGMINE_DCHECK_EQ(a, b) HGMINE_CHECK_EQ(a, b)
#define HGMINE_DCHECK_NE(a, b) HGMINE_CHECK_NE(a, b)
#define HGMINE_DCHECK_LE(a, b) HGMINE_CHECK_LE(a, b)
#define HGMINE_DCHECK_LT(a, b) HGMINE_CHECK_LT(a, b)
#define HGMINE_DCHECK_GE(a, b) HGMINE_CHECK_GE(a, b)
#define HGMINE_DCHECK_GT(a, b) HGMINE_CHECK_GT(a, b)
#else
#define HGMINE_DCHECK(condition) \
  while (false) HGMINE_CHECK(condition)
#define HGMINE_DCHECK_EQ(a, b) \
  while (false) HGMINE_CHECK_EQ(a, b)
#define HGMINE_DCHECK_NE(a, b) \
  while (false) HGMINE_CHECK_NE(a, b)
#define HGMINE_DCHECK_LE(a, b) \
  while (false) HGMINE_CHECK_LE(a, b)
#define HGMINE_DCHECK_LT(a, b) \
  while (false) HGMINE_CHECK_LT(a, b)
#define HGMINE_DCHECK_GE(a, b) \
  while (false) HGMINE_CHECK_GE(a, b)
#define HGMINE_DCHECK_GT(a, b) \
  while (false) HGMINE_CHECK_GT(a, b)
#endif
