#pragma once

/// \file bitset.h
/// \brief Dynamic fixed-universe bitset — the workhorse set representation.
///
/// Every object the paper manipulates (itemsets, hypergraph edges, minimal
/// transversals, attribute sets, Boolean assignments) is a subset of a fixed
/// universe {0, ..., n-1}.  Bitset stores such a subset as packed 64-bit
/// words and provides the full set algebra, subset/intersection predicates,
/// set-bit iteration, hashing and ordering, all branch-light and inlined.
///
/// Invariant: bits at positions >= size() in the last word are always zero,
/// so whole-word comparisons and popcounts are exact.

#include <bit>
#include <cassert>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

namespace hgm {

/// A subset of the universe {0, ..., size()-1}, packed into 64-bit words.
class Bitset {
 public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  /// Constructs the empty subset of a universe with \p nbits elements.
  explicit Bitset(size_t nbits = 0)
      : nbits_(nbits), words_(NumWordsFor(nbits), 0) {}

  /// Constructs a subset of {0..nbits-1} containing exactly \p indices.
  Bitset(size_t nbits, std::initializer_list<size_t> indices)
      : Bitset(nbits) {
    for (size_t i : indices) Set(i);
  }

  /// Returns the subset of {0..nbits-1} containing exactly \p indices.
  template <typename Container>
  static Bitset FromIndices(size_t nbits, const Container& indices) {
    Bitset b(nbits);
    for (size_t i : indices) b.Set(i);
    return b;
  }

  /// Returns {i} as a subset of {0..nbits-1}.
  static Bitset Singleton(size_t nbits, size_t i) {
    Bitset b(nbits);
    b.Set(i);
    return b;
  }

  /// Returns the full universe {0..nbits-1}.
  static Bitset Full(size_t nbits) {
    Bitset b(nbits);
    b.SetAll();
    return b;
  }

  /// Number of elements in the universe (not the subset).
  size_t size() const { return nbits_; }

  /// True iff the universe itself is empty (size() == 0).
  bool UniverseEmpty() const { return nbits_ == 0; }

  /// Membership test for element \p i.
  bool Test(size_t i) const {
    assert(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Inserts element \p i.
  void Set(size_t i) {
    assert(i < nbits_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  /// Removes element \p i.
  void Reset(size_t i) {
    assert(i < nbits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  /// Toggles element \p i.
  void Flip(size_t i) {
    assert(i < nbits_);
    words_[i >> 6] ^= uint64_t{1} << (i & 63);
  }

  /// Makes this the full universe.
  void SetAll() {
    for (auto& w : words_) w = ~uint64_t{0};
    MaskTail();
  }

  /// Makes this the empty set.
  void ResetAll() {
    for (auto& w : words_) w = 0;
  }

  /// Number of elements in the subset.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(std::popcount(w));
    return c;
  }

  /// True iff the subset is non-empty.
  bool Any() const {
    for (uint64_t w : words_)
      if (w) return true;
    return false;
  }

  /// True iff the subset is empty.
  bool None() const { return !Any(); }

  /// True iff the subset equals the whole universe.
  bool AllSet() const { return Count() == nbits_; }

  /// Grows or shrinks the universe to \p nbits, dropping elements >= nbits.
  void Resize(size_t nbits) {
    nbits_ = nbits;
    words_.resize(NumWordsFor(nbits), 0);
    MaskTail();
  }

  Bitset& operator&=(const Bitset& o) {
    assert(nbits_ == o.nbits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }
  Bitset& operator|=(const Bitset& o) {
    assert(nbits_ == o.nbits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }
  Bitset& operator^=(const Bitset& o) {
    assert(nbits_ == o.nbits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
    return *this;
  }
  /// Set difference: removes every element of \p o from this set.
  Bitset& operator-=(const Bitset& o) {
    assert(nbits_ == o.nbits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }

  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }
  friend Bitset operator|(Bitset a, const Bitset& b) { return a |= b; }
  friend Bitset operator^(Bitset a, const Bitset& b) { return a ^= b; }
  friend Bitset operator-(Bitset a, const Bitset& b) { return a -= b; }

  /// Complement within the universe.
  Bitset operator~() const {
    Bitset r(*this);
    for (auto& w : r.words_) w = ~w;
    r.MaskTail();
    return r;
  }

  /// Returns a copy with element \p i inserted.
  Bitset WithBit(size_t i) const {
    Bitset r(*this);
    r.Set(i);
    return r;
  }

  /// Returns a copy with element \p i removed.
  Bitset WithoutBit(size_t i) const {
    Bitset r(*this);
    r.Reset(i);
    return r;
  }

  /// True iff this ⊆ o.
  bool IsSubsetOf(const Bitset& o) const {
    assert(nbits_ == o.nbits_);
    for (size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & ~o.words_[i]) return false;
    return true;
  }

  /// True iff this ⊂ o (subset and not equal).
  bool IsProperSubsetOf(const Bitset& o) const {
    return IsSubsetOf(o) && *this != o;
  }

  /// True iff this ∩ o ≠ ∅.
  bool Intersects(const Bitset& o) const {
    assert(nbits_ == o.nbits_);
    for (size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & o.words_[i]) return true;
    return false;
  }

  /// |this ∩ o| without materializing the intersection.
  size_t IntersectionCount(const Bitset& o) const {
    assert(nbits_ == o.nbits_);
    size_t c = 0;
    for (size_t i = 0; i < words_.size(); ++i)
      c += static_cast<size_t>(std::popcount(words_[i] & o.words_[i]));
    return c;
  }

  /// Capped |this ∩ o|: streams the word-wise AND in 4-word unrolled
  /// blocks with the early-exit compare hoisted to the block boundary, so
  /// the common no-exit case runs popcounts back to back instead of
  /// branching per word.  Returns the exact intersection size when it is
  /// below \p cap, and the (>= cap) running count at the block where it
  /// crossed otherwise — callers accumulating partial counts only need
  /// "at least cap", and the returned value is always a lower bound of
  /// the exact count.
  size_t IntersectionCountCapped(const Bitset& o, size_t cap) const {
    assert(nbits_ == o.nbits_);
    if (cap == 0) return 0;
    const uint64_t* a = words_.data();
    const uint64_t* b = o.words_.data();
    const size_t nw = words_.size();
    size_t c = 0;
    size_t i = 0;
    for (; i + 4 <= nw; i += 4) {
      c += static_cast<size_t>(std::popcount(a[i] & b[i])) +
           static_cast<size_t>(std::popcount(a[i + 1] & b[i + 1])) +
           static_cast<size_t>(std::popcount(a[i + 2] & b[i + 2])) +
           static_cast<size_t>(std::popcount(a[i + 3] & b[i + 3]));
      if (c >= cap) return c;
    }
    for (; i < nw; ++i) {
      c += static_cast<size_t>(std::popcount(a[i] & b[i]));
    }
    return c;
  }

  /// True iff |this ∩ o| >= threshold, early-exiting once the running
  /// popcount reaches the threshold.  For support counting this lets
  /// frequent candidates stop as soon as min_support rows are confirmed
  /// instead of scanning the whole tidset.
  bool IntersectionCountAtLeast(const Bitset& o, size_t threshold) const {
    return IntersectionCountCapped(o, threshold) >= threshold;
  }

  /// True iff Count() >= threshold, early-exiting per word.
  bool CountAtLeast(size_t threshold) const {
    if (threshold == 0) return true;
    size_t c = 0;
    for (uint64_t w : words_) {
      c += static_cast<size_t>(std::popcount(w));
      if (c >= threshold) return true;
    }
    return false;
  }

  /// Index of the smallest element, or npos if empty.
  size_t FindFirst() const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      if (words_[wi])
        return (wi << 6) + static_cast<size_t>(std::countr_zero(words_[wi]));
    }
    return npos;
  }

  /// Index of the smallest element strictly greater than \p i, or npos.
  size_t FindNext(size_t i) const {
    ++i;
    if (i >= nbits_) return npos;
    size_t wi = i >> 6;
    uint64_t w = words_[wi] & (~uint64_t{0} << (i & 63));
    if (w) return (wi << 6) + static_cast<size_t>(std::countr_zero(w));
    for (++wi; wi < words_.size(); ++wi) {
      if (words_[wi])
        return (wi << 6) + static_cast<size_t>(std::countr_zero(words_[wi]));
    }
    return npos;
  }

  /// Index of the largest element, or npos if empty.
  size_t FindLast() const {
    for (size_t wi = words_.size(); wi-- > 0;) {
      if (words_[wi])
        return (wi << 6) + 63 -
               static_cast<size_t>(std::countl_zero(words_[wi]));
    }
    return npos;
  }

  /// Invokes \p fn(i) for each element i in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w) {
        size_t bit = static_cast<size_t>(std::countr_zero(w));
        fn((wi << 6) + bit);
        w &= w - 1;
      }
    }
  }

  /// Materializes the elements in increasing order.
  std::vector<size_t> Indices() const {
    std::vector<size_t> out;
    out.reserve(Count());
    ForEach([&](size_t i) { out.push_back(i); });
    return out;
  }

  /// Input iterator over set-bit indices, smallest first.
  class Iterator {
   public:
    using value_type = size_t;
    using difference_type = std::ptrdiff_t;

    Iterator(const Bitset* owner, size_t pos) : owner_(owner), pos_(pos) {}
    size_t operator*() const { return pos_; }
    Iterator& operator++() {
      pos_ = owner_->FindNext(pos_);
      return *this;
    }
    Iterator operator++(int) {
      Iterator tmp = *this;
      ++*this;
      return tmp;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.pos_ == b.pos_;
    }

   private:
    const Bitset* owner_;
    size_t pos_;
  };

  Iterator begin() const { return Iterator(this, FindFirst()); }
  Iterator end() const { return Iterator(this, npos); }

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.nbits_ == b.nbits_ && a.words_ == b.words_;
  }
  friend bool operator!=(const Bitset& a, const Bitset& b) {
    return !(a == b);
  }

  /// Total order (by universe size, then by words little-endian), suitable
  /// for std::map / std::sort.  Not the colex order of the subsets.
  friend bool operator<(const Bitset& a, const Bitset& b) {
    if (a.nbits_ != b.nbits_) return a.nbits_ < b.nbits_;
    for (size_t i = a.words_.size(); i-- > 0;) {
      if (a.words_[i] != b.words_[i]) return a.words_[i] < b.words_[i];
    }
    return false;
  }

  /// 64-bit FNV-1a over the words; used by BitsetHash.
  size_t HashValue() const {
    uint64_t h = 1469598103934665603ull;
    for (uint64_t w : words_) {
      h ^= w;
      h *= 1099511628211ull;
    }
    h ^= nbits_;
    h *= 1099511628211ull;
    return static_cast<size_t>(h);
  }

  /// Renders as "{1, 4, 7}".
  std::string ToString() const;

  /// Renders as a dense 0/1 string, index 0 leftmost, e.g. "01011".
  std::string ToDenseString() const;

  /// Renders using per-element \p names, e.g. "ABD" with names {"A","B",..}.
  std::string Format(const std::vector<std::string>& names,
                     const std::string& sep = "") const;

  /// Direct word access for bulk algorithms (read-only).
  const std::vector<uint64_t>& words() const { return words_; }

 private:
  static size_t NumWordsFor(size_t nbits) { return (nbits + 63) >> 6; }

  /// Clears any bits beyond nbits_ in the last word.
  void MaskTail() {
    size_t rem = nbits_ & 63;
    if (rem != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << rem) - 1;
    }
  }

  size_t nbits_;
  std::vector<uint64_t> words_;
};

/// Hash functor for unordered containers keyed by Bitset.
struct BitsetHash {
  size_t operator()(const Bitset& b) const { return b.HashValue(); }
};

}  // namespace hgm
