#pragma once

/// \file table_printer.h
/// \brief Aligned ASCII tables for the experiment harnesses.
///
/// Every bench binary in bench/ prints its result rows through TablePrinter
/// so that EXPERIMENTS.md can quote the output verbatim.

#include <cctype>
#include <cstdint>
#include <type_traits>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace hgm {

/// Collects rows of heterogeneous cells and renders them with aligned
/// columns; optionally also as CSV.
class TablePrinter {
 public:
  /// Creates a table with the given column \p headers.
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Starts a new row; cells are appended with Add*().
  TablePrinter& NewRow() {
    rows_.emplace_back();
    return *this;
  }

  TablePrinter& Add(const std::string& cell) {
    rows_.back().push_back(cell);
    return *this;
  }
  TablePrinter& Add(const char* cell) { return Add(std::string(cell)); }

  /// Adds any integral cell.
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  TablePrinter& Add(T v) {
    return Add(std::to_string(v));
  }

  /// Adds a floating-point cell with \p precision decimals.
  TablePrinter& Add(double v, int precision = 3) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return Add(os.str());
  }

  /// Renders the table, right-aligning numeric-looking cells.
  void Print(std::ostream& os = std::cout) const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    }
    PrintRow(os, headers_, width);
    std::string rule;
    for (size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c], '-');
      if (c + 1 < width.size()) rule += "-+-";
    }
    os << rule << "\n";
    for (const auto& row : rows_) PrintRow(os, row, width);
  }

  /// Renders the table as CSV (no quoting; cells must not contain commas).
  void PrintCsv(std::ostream& os) const {
    PrintCsvRow(os, headers_);
    for (const auto& row : rows_) PrintCsvRow(os, row);
  }

  size_t num_rows() const { return rows_.size(); }

 private:
  static void PrintCsvRow(std::ostream& os,
                          const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  }

  void PrintRow(std::ostream& os, const std::vector<std::string>& row,
                const std::vector<size_t>& width) const {
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      size_t pad = width[c] - cell.size();
      // Right-align numbers, left-align text.
      bool numeric = !cell.empty() && (std::isdigit(cell[0]) ||
                                       cell[0] == '-' || cell[0] == '+');
      if (numeric) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell << std::string(pad, ' ');
      }
      if (c + 1 < width.size()) os << " | ";
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hgm
