#pragma once

/// \file apriori_gen.h
/// \brief Levelwise candidate generation over the subset lattice.
///
/// Step 5 of Algorithm 9 specialized to languages represented as sets:
/// given the interesting sets of size k (as sorted index vectors, sorted
/// lexicographically), produce the candidate sets of size k+1 all of whose
/// k-subsets are interesting.  This is the classic apriori-gen join+prune
/// of [2]; the paper notes it "uses only a negligible amount of time"
/// compared to evaluating the quality predicate.

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/bitset.h"

namespace hgm {

using ItemVec = std::vector<uint32_t>;

/// Joins lexicographically sorted k-sets sharing a (k-1)-prefix and prunes
/// candidates with a non-interesting k-subset.  \p level must be sorted and
/// contain sets of equal size k >= 1; \p level_set must contain exactly the
/// Bitset forms of \p level.  Returns sorted (k+1)-candidates.
inline std::vector<ItemVec> AprioriGen(
    const std::vector<ItemVec>& level,
    const std::unordered_set<Bitset, BitsetHash>& level_set, size_t n) {
  std::vector<ItemVec> candidates;
  if (level.empty()) return candidates;
  const size_t k = level[0].size();
  for (size_t i = 0; i < level.size(); ++i) {
    for (size_t j = i + 1; j < level.size(); ++j) {
      if (!std::equal(level[i].begin(), level[i].end() - 1,
                      level[j].begin())) {
        break;  // sorted input keeps shared-prefix blocks contiguous
      }
      ItemVec cand = level[i];
      cand.push_back(level[j].back());
      if (cand[k - 1] > cand[k]) std::swap(cand[k - 1], cand[k]);
      bool ok = true;
      for (size_t drop = 0; ok && drop + 2 <= cand.size(); ++drop) {
        ItemVec sub;
        sub.reserve(k);
        for (size_t t = 0; t < cand.size(); ++t) {
          if (t != drop) sub.push_back(cand[t]);
        }
        ok = level_set.contains(Bitset::FromIndices(n, sub));
      }
      if (ok) candidates.push_back(std::move(cand));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

/// All singleton candidates {0}, ..., {n-1} (level-1 seeding).
inline std::vector<ItemVec> SingletonCandidates(size_t n) {
  std::vector<ItemVec> out;
  out.reserve(n);
  for (uint32_t v = 0; v < n; ++v) out.push_back(ItemVec{v});
  return out;
}

}  // namespace hgm
