#include "hypergraph/transversal_brute.h"

#include <cassert>

namespace hgm {

Hypergraph BruteForceTransversals::Compute(const Hypergraph& h) {
  stats_ = TransversalStats();
  const size_t n = h.num_vertices();
  assert(n <= 26 && "brute-force transversal enumeration needs small n");

  Hypergraph input = h;
  input.Minimize();
  Hypergraph result(n);
  if (input.HasEmptyEdge()) return result;  // no transversals at all

  const uint64_t limit = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    Bitset x(n);
    for (size_t v = 0; v < n; ++v) {
      if ((mask >> v) & 1) x.Set(v);
    }
    ++stats_.candidates;
    ++stats_.checks;
    if (input.IsMinimalTransversal(x)) result.AddEdge(std::move(x));
  }
  return result;
}

}  // namespace hgm
