#include "hypergraph/transversal_brute.h"

#include "common/check.h"
#include "hypergraph/transversal_audit.h"

namespace hgm {

Hypergraph BruteForceTransversals::Compute(const Hypergraph& h) {
  stats_ = TransversalStats();
  TransversalComputeScope obs_scope(name(), h, &stats_);
  const size_t n = h.num_vertices();
  HGMINE_CHECK_LE(n, 26)
      << "; brute-force transversal enumeration walks all 2^n subsets";

  Hypergraph input = h;
  input.Minimize();
  Hypergraph result(n);
  if (input.HasEmptyEdge()) return result;  // no transversals at all

  const uint64_t limit = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    if ((mask & 0xFFF) == 0) CheckCancelled("brute");
    Bitset x(n);
    for (size_t v = 0; v < n; ++v) {
      if ((mask >> v) & 1) x.Set(v);
    }
    ++stats_.candidates;
    ++stats_.checks;
    if (input.IsMinimalTransversal(x)) result.AddEdge(std::move(x));
  }
  if (audit::kEnabled) {
    audit::AuditMinimalTransversals(input, result.edges(), "brute");
  }
  return result;
}

}  // namespace hgm
