#include "hypergraph/transversal_fk.h"

#include <algorithm>
#include <cassert>

#include "hypergraph/transversal_audit.h"
#include "hypergraph/transversal_berge.h"

namespace hgm {

namespace {

bool ContainsEmpty(const std::vector<Bitset>& terms) {
  for (const auto& t : terms) {
    if (t.None()) return true;
  }
  return false;
}

/// Evaluates the monotone DNF with the given \p terms at point \p x:
/// true iff some term is a subset of x.
bool EvalDnf(const std::vector<Bitset>& terms, const Bitset& x) {
  for (const auto& t : terms) {
    if (t.IsSubsetOf(x)) return true;
  }
  return false;
}

/// Exact minimal transversals of a small antichain (<= 2 sets) restricted
/// to the free variables, via Berge on a throwaway hypergraph.
std::vector<Bitset> SmallTransversals(const std::vector<Bitset>& terms,
                                      size_t n) {
  Hypergraph h(n);
  for (const auto& t : terms) h.AddEdge(t);
  BergeTransversals berge;
  return berge.Compute(h).SortedEdges();
}

/// Set equality of two antichains.
bool SameAntichain(std::vector<Bitset> a, std::vector<Bitset> b) {
  auto less = [](const Bitset& x, const Bitset& y) { return x < y; };
  std::sort(a.begin(), a.end(), less);
  std::sort(b.begin(), b.end(), less);
  return a == b;
}

}  // namespace

DualityResult FkDualityTester::Check(const Hypergraph& f,
                                     const Hypergraph& g) {
  assert(f.num_vertices() == g.num_vertices());
  recursion_nodes_ = 0;
  max_depth_ = 0;
  Hypergraph fm = f, gm = g;
  fm.Minimize();
  gm.Minimize();
  return CheckRec(fm.edges(), gm.edges(),
                  Bitset::Full(f.num_vertices()), 0);
}

DualityResult FkDualityTester::CheckRec(std::vector<Bitset> f,
                                        std::vector<Bitset> g,
                                        const Bitset& free, size_t depth) {
  ++recursion_nodes_;
  cancel_.ThrowIfCancelled("fk");
  max_depth_ = std::max(max_depth_, depth);
  const size_t n = free.size();

  // ---- Constant base cases -------------------------------------------
  // f == 0: dual is the constant 1, whose unique antichain form is {∅}.
  if (f.empty()) {
    if (g.size() == 1 && g[0].None()) return {true, Bitset(n)};
    // Witness x = ∅: g(∅) is 0 (g is either empty or has only non-empty
    // terms here), while ¬f(¬∅) = ¬0 = 1.
    return {false, Bitset(n)};
  }
  // f == 1: dual is the constant 0, i.e. g must have no terms.
  if (ContainsEmpty(f)) {
    if (g.empty()) return {true, Bitset(n)};
    // Witness: any point where g is 1; a term of g works (g(s)=1,
    // ¬f(¬s)=¬1=0).  If g = {∅} use x = ∅.
    return {false, g[0]};
  }
  // g == 0 (and f is non-constant): witness x = free; g(x)=0 but
  // f(¬x)=f(∅)=0 so ¬f(¬x)=1.
  if (g.empty()) return {false, free};
  // g == 1 (and f nonempty, no empty term): witness x = free \ t for any
  // term t of f: f(¬x)=f(t)=1 so ¬f=0, but g(x)=1.
  if (ContainsEmpty(g)) return {false, free - f[0]};

  // ---- Pairwise intersection test ------------------------------------
  // Duality requires every term of f to intersect every term of g.
  for (const auto& t : f) {
    for (const auto& s : g) {
      if (!t.Intersects(s)) {
        // Witness x = s: g(s) = 1; t ⊆ free \ s, so f(¬s) = 1, ¬f = 0.
        return {false, s};
      }
    }
  }

  // ---- Small subproblems solved exactly ------------------------------
  if (f.size() <= 2 || g.size() <= 2) {
    const bool f_small = f.size() <= g.size();
    const std::vector<Bitset>& small = f_small ? f : g;
    const std::vector<Bitset>& big = f_small ? g : f;
    std::vector<Bitset> tr = SmallTransversals(small, n);
    if (SameAntichain(tr, big)) return {true, Bitset(n)};
    // Mismatch; construct a witness for dual(small, big), then transform
    // if the roles were swapped.
    Bitset w(n);
    bool found = false;
    // A minimal transversal missing from `big` is itself a witness: at
    // that point small's dual is 1 but big evaluates to 0 (no big-term can
    // be a proper subset of a minimal transversal of small, because the
    // pairwise test above made every big-term a transversal of small).
    for (const auto& t : tr) {
      if (std::find(big.begin(), big.end(), t) == big.end() &&
          !EvalDnf(big, t)) {
        w = t;
        found = true;
        break;
      }
    }
    if (!found) {
      // Then big contains a non-minimal transversal s; shrink it one step.
      // s \ {v} is still a transversal (¬small(¬x) = 1) but no big-term
      // fits inside it (that term would be a proper subset of s,
      // contradicting the antichain property).
      Hypergraph sh(n);
      for (const auto& t : small) sh.AddEdge(t);
      for (const auto& s : big) {
        if (std::find(tr.begin(), tr.end(), s) != tr.end()) continue;
        for (size_t v = s.FindFirst(); v != Bitset::npos;
             v = s.FindNext(v)) {
          Bitset cand = s.WithoutBit(v);
          if (sh.IsTransversal(cand)) {
            w = cand;
            found = true;
            break;
          }
        }
        if (found) break;
      }
    }
    assert(found && "small-case mismatch must yield a witness");
    if (!f_small) {
      // w witnesses dual(g, f); dual(f, g)'s witness is its complement
      // within the free variables.
      w = free - w;
    }
    return {false, w};
  }

  // ---- Recursive step on a most frequent variable --------------------
  std::vector<uint32_t> freq(n, 0);
  for (const auto& t : f) t.ForEach([&](size_t v) { ++freq[v]; });
  for (const auto& s : g) s.ForEach([&](size_t v) { ++freq[v]; });
  size_t best_v = Bitset::npos;
  uint32_t best_f = 0;
  free.ForEach([&](size_t v) {
    if (freq[v] > best_f) {
      best_f = freq[v];
      best_v = v;
    }
  });
  assert(best_v != Bitset::npos &&
         "non-constant antichains must use a free variable");

  auto split = [&](const std::vector<Bitset>& terms, size_t v,
                   std::vector<Bitset>* without_v,
                   std::vector<Bitset>* shortened) {
    for (const auto& t : terms) {
      if (t.Test(v)) {
        shortened->push_back(t.WithoutBit(v));
      } else {
        without_v->push_back(t);
      }
    }
  };

  std::vector<Bitset> f0, f1, g0, g1;
  split(f, best_v, &f0, &f1);
  split(g, best_v, &g0, &g1);

  Bitset sub_free = free.WithoutBit(best_v);

  // (1) dual(f_{v=0}, g_{v=1}) — the v=1 half-space.
  {
    std::vector<Bitset> gv1 = g0;
    gv1.insert(gv1.end(), g1.begin(), g1.end());
    AntichainMinimize(&gv1);
    DualityResult r = CheckRec(f0, std::move(gv1), sub_free, depth + 1);
    if (!r.dual) {
      r.witness.Set(best_v);
      return r;
    }
  }
  // (2) dual(f_{v=1}, g_{v=0}) — the v=0 half-space.
  {
    std::vector<Bitset> fv1 = f0;
    fv1.insert(fv1.end(), f1.begin(), f1.end());
    AntichainMinimize(&fv1);
    DualityResult r = CheckRec(std::move(fv1), g0, sub_free, depth + 1);
    if (!r.dual) return r;
  }
  return {true, Bitset(n)};
}

void FkTransversalEnumerator::Reset(const Hypergraph& h) {
  input_ = h;
  input_.Minimize();
  found_.clear();
  emitted_empty_ = false;
  done_ = false;
  recursion_nodes_ = 0;
  if (input_.HasEmptyEdge()) done_ = true;  // no transversals exist
}

bool FkTransversalEnumerator::Next(Bitset* out) {
  if (done_) return false;
  const size_t n = input_.num_vertices();
  if (input_.empty()) {
    // Tr of the edge-free hypergraph is {∅}.
    if (emitted_empty_) return false;
    emitted_empty_ = true;
    done_ = true;
    *out = Bitset(n);
    return true;
  }
  Hypergraph g(n);
  for (const auto& t : found_) g.AddEdge(t);
  FkDualityTester tester;
  tester.SetCancellation(cancel_);
  DualityResult r = tester.Check(input_, g);
  recursion_nodes_ += tester.recursion_nodes();
  if (r.dual) {
    done_ = true;
    return false;
  }
  // Every member of found_ is a genuine minimal transversal, so the
  // witness must satisfy g(x)=0 and f(¬x)=0; i.e. x is a transversal
  // containing none of the transversals found so far.
  assert(input_.IsTransversal(r.witness));
  found_.push_back(input_.MinimizeTransversal(std::move(r.witness)));
  *out = found_.back();
  return true;
}

Hypergraph FkTransversals::Compute(const Hypergraph& h) {
  stats_ = TransversalStats();
  TransversalComputeScope obs_scope(name(), h, &stats_);
  FkTransversalEnumerator en;
  en.SetCancellation(cancel_);
  en.Reset(h);
  Hypergraph result(h.num_vertices());
  Bitset t;
  while (en.Next(&t)) {
    result.AddEdge(t);
    ++stats_.candidates;
  }
  stats_.recursion_nodes = en.recursion_nodes();
  if (audit::kEnabled) {
    audit::AuditMinimalTransversals(h, result.edges(), "fk");
  }
  return result;
}

}  // namespace hgm
