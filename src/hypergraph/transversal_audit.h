#pragma once

/// \file transversal_audit.h
/// \brief Lemma 18 emission contract: engines emit only minimal
/// transversals, each exactly once.
///
/// Header-only so the transversal engines (which sit below core/) can
/// audit their own output; core/audit.h re-exports these for callers that
/// include the full audit layer.  Hot paths gate calls on audit::kEnabled.

#include <span>
#include <string>
#include <unordered_set>

#include "common/audit_stats.h"
#include "common/bitset.h"
#include "hypergraph/hypergraph.h"

namespace hgm {
namespace audit {

/// Checks that \p t is a minimal transversal of \p reduced, which must
/// already be minimized (engines all minimize their input first).  Charges
/// one minimality check.
inline bool AuditMinimalTransversal(const Hypergraph& reduced,
                                    const Bitset& t, const char* where) {
  ChargeChecks(Contract::kMinimality, 1);
  if (!reduced.IsMinimalTransversal(t)) {
    const char* why = reduced.IsTransversal(t)
                          ? "is a transversal but not minimal"
                          : "misses an edge entirely";
    ReportViolation(Contract::kMinimality,
                    std::string(where) + ": emitted set " + t.ToString() +
                        " " + why + " of " + reduced.ToString());
    return false;
  }
  return true;
}

/// Checks every member of \p transversals with AuditMinimalTransversal
/// against min(\p input), and that the family is duplicate-free.
inline bool AuditMinimalTransversals(const Hypergraph& input,
                                     std::span<const Bitset> transversals,
                                     const char* where) {
  Hypergraph reduced = input;
  reduced.Minimize();
  std::unordered_set<Bitset, BitsetHash> seen;
  for (const Bitset& t : transversals) {
    if (!AuditMinimalTransversal(reduced, t, where)) return false;
    if (!seen.insert(t).second) {
      ReportViolation(Contract::kMinimality,
                      std::string(where) + ": transversal " + t.ToString() +
                          " emitted twice");
      return false;
    }
  }
  return true;
}

}  // namespace audit
}  // namespace hgm
