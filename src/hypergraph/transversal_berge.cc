#include "hypergraph/transversal_berge.h"

#include <algorithm>
#include <unordered_set>

#include "hypergraph/transversal_audit.h"

namespace hgm {

namespace {

/// True iff \p x is a minimal transversal of the first \p prefix_len edges:
/// x intersects each of them and every vertex of x owns a private edge.
bool IsMinimalForPrefix(const std::vector<Bitset>& edges, size_t prefix_len,
                        const Bitset& x, std::vector<uint8_t>* scratch) {
  scratch->assign(x.size(), 0);
  for (size_t i = 0; i < prefix_len; ++i) {
    const Bitset& e = edges[i];
    size_t hits = x.IntersectionCount(e);
    if (hits == 0) return false;
    if (hits == 1) (*scratch)[(x & e).FindFirst()] = 1;
  }
  bool minimal = true;
  x.ForEach([&](size_t v) {
    if (!(*scratch)[v]) minimal = false;
  });
  return minimal;
}

}  // namespace

Hypergraph BergeTransversals::Compute(const Hypergraph& h) {
  stats_ = TransversalStats();
  TransversalComputeScope obs_scope(name(), h, &stats_);
  peak_intermediate_size_ = 0;

  Hypergraph input = h;
  input.Minimize();
  const size_t n = input.num_vertices();

  Hypergraph result(n);
  if (input.HasEmptyEdge()) return result;
  if (input.empty()) {
    result.AddEdge(Bitset(n));  // Tr(edge-free H) = {∅}
    return result;
  }

  const std::vector<Bitset>& edges = input.edges();
  // Minimal transversals of the empty prefix: just ∅.
  std::vector<Bitset> current;
  current.push_back(Bitset(n));
  std::vector<uint8_t> scratch;

  uint64_t polled = 0;
  for (size_t i = 0; i < edges.size(); ++i) {
    CheckCancelled("berge");
    const Bitset& e = edges[i];
    std::vector<Bitset> next;
    next.reserve(current.size());
    std::unordered_set<Bitset, BitsetHash> seen;
    for (const Bitset& t : current) {
      // The intermediate family can dwarf the edge count (the Berge blow-
      // up), so also poll inside the per-edge sweep.
      if ((++polled & 0xFFF) == 0) CheckCancelled("berge");
      if (t.Intersects(e)) {
        // Still a transversal of the longer prefix, and still minimal:
        // private edges only gain candidates as the prefix grows... they
        // may in fact be lost for OTHER vertices?  No: adding an edge never
        // removes a private edge.  Minimality could only break if t became
        // non-minimal, i.e. some v in t lost all private edges -- adding
        // edges cannot cause that.  So t survives untouched.
        if (seen.insert(t).second) next.push_back(t);
        continue;
      }
      // t misses e: extend by each vertex of e, keep the minimal ones.
      for (size_t v = e.FindFirst(); v != Bitset::npos; v = e.FindNext(v)) {
        Bitset cand = t.WithBit(v);
        ++stats_.candidates;
        if (seen.contains(cand)) continue;
        ++stats_.checks;
        if (IsMinimalForPrefix(edges, i + 1, cand, &scratch)) {
          seen.insert(cand);
          next.push_back(std::move(cand));
        }
      }
    }
    current = std::move(next);
    peak_intermediate_size_ = std::max(peak_intermediate_size_,
                                       current.size());
    ++stats_.recursion_nodes;  // one "level" per edge
  }

  for (auto& t : current) result.AddEdge(std::move(t));
  if (audit::kEnabled) {
    audit::AuditMinimalTransversals(input, result.edges(), "berge");
  }
  return result;
}

}  // namespace hgm
