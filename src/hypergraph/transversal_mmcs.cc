#include "hypergraph/transversal_mmcs.h"

#include <cassert>

#include "hypergraph/transversal_audit.h"

namespace hgm {

void MmcsEnumerator::Reset(const Hypergraph& h) {
  num_vertices_ = h.num_vertices();
  Hypergraph input = h;
  input.Minimize();
  done_ = false;
  emit_empty_ = false;
  nodes_ = 0;
  stack_.clear();
  partial_.clear();
  edges_.clear();

  if (input.HasEmptyEdge()) {
    done_ = true;  // no transversals
    return;
  }
  if (input.empty()) {
    emit_empty_ = true;  // Tr = {∅}
    return;
  }
  edges_ = input.edges();
  const size_t m = edges_.size();
  incidence_.assign(num_vertices_, Bitset(m));
  for (size_t e = 0; e < m; ++e) {
    edges_[e].ForEach([&](size_t v) { incidence_[v].Set(e); });
  }
  uncov_ = Bitset::Full(m);
  cand_ = Bitset::Full(num_vertices_);
  crit_.assign(num_vertices_, Bitset(m));
  PushFrame();
}

void MmcsEnumerator::PushFrame() {
  // Choose the uncovered edge with the fewest candidate vertices (the
  // MMCS branching rule); its candidate vertices are the branch set.
  size_t best_edge = Bitset::npos;
  size_t best_count = Bitset::npos;
  for (size_t e = uncov_.FindFirst(); e != Bitset::npos;
       e = uncov_.FindNext(e)) {
    size_t c = edges_[e].IntersectionCount(cand_);
    if (c < best_count) {
      best_count = c;
      best_edge = e;
    }
  }
  assert(best_edge != Bitset::npos);
  Frame f;
  Bitset branch_set = edges_[best_edge] & cand_;
  f.branch = branch_set.Indices();
  cand_ -= branch_set;  // restored when the frame exits
  stack_.push_back(std::move(f));
  ++nodes_;
}

void MmcsEnumerator::Apply(Frame* f, size_t v) {
  f->has_applied = true;
  f->applied_v = v;
  f->saved_uncov = uncov_;
  f->saved_crit.clear();
  for (size_t u : partial_) f->saved_crit.emplace_back(u, crit_[u]);
  // v's private edges are the uncovered edges it hits; members of S lose
  // any private edge v also hits.
  crit_[v] = uncov_ & incidence_[v];
  for (size_t u : partial_) crit_[u] -= incidence_[v];
  uncov_ -= incidence_[v];
  partial_.push_back(v);
}

void MmcsEnumerator::Undo(Frame* f) {
  assert(f->has_applied);
  partial_.pop_back();
  uncov_ = f->saved_uncov;
  for (auto& [u, saved] : f->saved_crit) crit_[u] = std::move(saved);
  crit_[f->applied_v].ResetAll();
  // The tried vertex returns to cand for the frame's later branches
  // (the MMCS "CAND <- CAND ∪ {v}" step).
  cand_.Set(f->applied_v);
  f->has_applied = false;
}

bool MmcsEnumerator::Next(Bitset* out) {
  if (done_) return false;
  if (emit_empty_) {
    emit_empty_ = false;
    done_ = true;
    *out = Bitset(num_vertices_);
    return true;
  }
  uint64_t turns = 0;
  while (!stack_.empty()) {
    if ((++turns & 0x3FF) == 0) CheckCancelled("mmcs");
    Frame& f = stack_.back();
    if (f.has_applied) {
      Undo(&f);
      continue;
    }
    if (f.next_branch >= f.branch.size()) {
      // Frame exhausted: restore its branch vertices to cand and pop.
      for (size_t v : f.branch) cand_.Set(v);
      // The applied vertex of the parent is undone on the next loop turn.
      stack_.pop_back();
      continue;
    }
    size_t v = f.branch[f.next_branch++];
    // Tentatively remove v from cand while its subtree is explored; it
    // was already removed at frame entry (v ∈ branch ⊆ removed set), and
    // Undo() re-adds it afterwards.
    Apply(&f, v);
    // Minimality: every member of S must keep a private edge.
    bool ok = true;
    for (size_t u : partial_) {
      if (crit_[u].None()) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;  // Undo happens on the next loop turn
    if (uncov_.None()) {
      // S is a minimal transversal: emit and resume (undo) on re-entry.
      *out = Bitset::FromIndices(num_vertices_, partial_);
      return true;
    }
    PushFrame();
  }
  done_ = true;
  return false;
}

Hypergraph MmcsTransversals::Compute(const Hypergraph& h) {
  stats_ = TransversalStats();
  TransversalComputeScope obs_scope(name(), h, &stats_);
  MmcsEnumerator en;
  en.SetCancellation(cancel_);
  en.Reset(h);
  Hypergraph result(h.num_vertices());
  Bitset t;
  while (en.Next(&t)) {
    result.AddEdge(t);
    ++stats_.candidates;
  }
  stats_.recursion_nodes = en.nodes();
  if (audit::kEnabled) {
    audit::AuditMinimalTransversals(h, result.edges(), "mmcs");
  }
  return result;
}

}  // namespace hgm
