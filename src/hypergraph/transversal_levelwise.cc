#include "hypergraph/transversal_levelwise.h"

#include <cassert>
#include <unordered_set>

#include "common/apriori_gen.h"
#include "hypergraph/transversal_audit.h"

namespace hgm {

Hypergraph LevelwiseTransversals::Compute(const Hypergraph& h) {
  stats_ = TransversalStats();
  TransversalComputeScope obs_scope(name(), h, &stats_);
  queries_ = 0;
  levels_ = 0;
  const size_t n = h.num_vertices();
  Hypergraph result(n);

  Hypergraph input = h;
  input.Minimize();
  if (input.HasEmptyEdge()) return result;  // no transversals

  auto is_interesting = [&](const Bitset& x) {
    ++queries_;
    ++stats_.checks;
    return !input.IsTransversal(x);
  };

  // Level 0.
  if (!is_interesting(Bitset(n))) {
    result.AddEdge(Bitset(n));  // ∅ is a (the) minimal transversal
    return result;
  }

  std::vector<ItemVec> level;  // interesting sets of the current size
  level.push_back(ItemVec{});
  std::unordered_set<Bitset, BitsetHash> level_set;

  for (size_t k = 0; !level.empty(); ++k) {
    CheckCancelled("levelwise-htr");
    assert(k <= max_level_ && "levelwise exceeded max_level cap");
    levels_ = k;
    // Generate candidates of size k+1.
    std::vector<ItemVec> candidates;
    if (k == 0) {
      candidates = SingletonCandidates(n);
    } else {
      level_set.clear();
      for (const auto& s : level) {
        level_set.insert(Bitset::FromIndices(n, s));
      }
      candidates = AprioriGen(level, level_set, n);
    }
    stats_.candidates += candidates.size();
    ++stats_.recursion_nodes;

    // Evaluate the whole level as one parallel batch of independent
    // Is-transversal checks; each query is still charged (Theorem 10).
    std::vector<Bitset> batch;
    batch.reserve(candidates.size());
    for (const auto& cand : candidates) {
      batch.push_back(Bitset::FromIndices(n, cand));
    }
    queries_ += batch.size();
    stats_.checks += batch.size();
    std::vector<uint8_t> interesting(batch.size(), 0);
    pool_->ParallelFor(batch.size(),
                       [&](size_t begin, size_t end, size_t) {
                         for (size_t i = begin; i < end; ++i) {
                           interesting[i] =
                               input.IsTransversal(batch[i]) ? 0 : 1;
                         }
                       });

    std::vector<ItemVec> next;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (interesting[c]) {
        next.push_back(std::move(candidates[c]));
      } else {
        // A transversal whose every immediate subset is a non-transversal:
        // by downward closure of non-transversality, x is minimal.
        result.AddEdge(std::move(batch[c]));
      }
    }
    level = std::move(next);
  }
  if (audit::kEnabled) {
    audit::AuditMinimalTransversals(input, result.edges(), "levelwise-htr");
  }
  return result;
}

}  // namespace hgm
