#include "hypergraph/generators.h"

#include <cassert>

namespace hgm {

Hypergraph MatchingHypergraph(size_t n) {
  assert(n % 2 == 0);
  Hypergraph h(n);
  for (size_t i = 0; i + 1 < n; i += 2) {
    h.AddEdgeIndices({i, i + 1});
  }
  return h;
}

Hypergraph CompleteGraph(size_t n) {
  Hypergraph h(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      h.AddEdgeIndices({i, j});
    }
  }
  return h;
}

Hypergraph RandomUniform(size_t n, size_t num_edges, size_t k, Rng* rng) {
  assert(k <= n);
  Hypergraph h(n);
  for (size_t e = 0; e < num_edges; ++e) {
    h.AddEdge(Bitset::FromIndices(n, rng->SampleWithoutReplacement(n, k)));
  }
  h.Minimize();
  return h;
}

Hypergraph RandomCoSmall(size_t n, size_t num_edges, size_t k, Rng* rng) {
  assert(k >= 1 && k <= n);
  Hypergraph h(n);
  for (size_t e = 0; e < num_edges; ++e) {
    size_t size = rng->UniformInt(1, k);
    Bitset small =
        Bitset::FromIndices(n, rng->SampleWithoutReplacement(n, size));
    h.AddEdge(~small);
  }
  h.Minimize();
  return h;
}

Hypergraph RandomBernoulli(size_t n, size_t num_edges, double p, Rng* rng) {
  Hypergraph h(n);
  for (size_t e = 0; e < num_edges; ++e) {
    Bitset edge(n);
    do {
      edge.ResetAll();
      for (size_t v = 0; v < n; ++v) {
        if (rng->Bernoulli(p)) edge.Set(v);
      }
    } while (edge.None());
    h.AddEdge(std::move(edge));
  }
  h.Minimize();
  return h;
}

Hypergraph PathGraph(size_t n) {
  Hypergraph h(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    h.AddEdgeIndices({i, i + 1});
  }
  return h;
}

}  // namespace hgm
