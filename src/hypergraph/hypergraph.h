#pragma once

/// \file hypergraph.h
/// \brief Simple hypergraphs over a fixed vertex universe (paper Section 3).
///
/// A (simple) hypergraph H on a vertex set R is a collection of non-empty,
/// pairwise-incomparable subsets of R (an antichain).  The library stores an
/// arbitrary edge multiset and provides Minimize() to reduce it to the
/// simple hypergraph min(H) with the same transversals.

#include <string>
#include <string_view>
#include <vector>

#include "common/bitset.h"
#include "common/check.h"
#include "common/status.h"

namespace hgm {

/// \brief An edge list over the vertex universe {0, ..., num_vertices()-1}.
///
/// Edges are Bitsets.  The class does not force simplicity on insertion
/// (several algorithms build intermediate non-simple collections); call
/// Minimize() / IsSimple() where the antichain property is required.
class Hypergraph {
 public:
  /// Creates an edge-free hypergraph on \p num_vertices vertices.
  explicit Hypergraph(size_t num_vertices = 0)
      : num_vertices_(num_vertices) {}

  /// Creates a hypergraph from explicit vertex-index lists.
  static Hypergraph FromEdgeLists(
      size_t num_vertices,
      const std::vector<std::vector<size_t>>& edge_lists) {
    Hypergraph h(num_vertices);
    for (const auto& e : edge_lists) {
      h.AddEdge(Bitset::FromIndices(num_vertices, e));
    }
    return h;
  }

  size_t num_vertices() const { return num_vertices_; }
  size_t num_edges() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }

  const std::vector<Bitset>& edges() const { return edges_; }
  const Bitset& edge(size_t i) const { return edges_[i]; }

  /// Appends an edge.  The edge universe must match num_vertices().
  void AddEdge(Bitset edge) {
    HGMINE_DCHECK_EQ(edge.size(), num_vertices_);
    edges_.push_back(std::move(edge));
  }

  /// Appends an edge given as vertex indices.
  void AddEdgeIndices(std::initializer_list<size_t> indices) {
    AddEdge(Bitset::FromIndices(num_vertices_, indices));
  }

  /// Sum of edge cardinalities (the "input size" of HTR instances).
  size_t TotalEdgeSize() const;

  /// Size of the smallest edge; npos for an edge-free hypergraph.
  size_t MinEdgeSize() const;

  /// Size of the largest edge; 0 for an edge-free hypergraph.
  size_t MaxEdgeSize() const;

  /// True iff some edge is empty (such a hypergraph has no transversals).
  bool HasEmptyEdge() const;

  /// True iff the edge set is a simple hypergraph: all edges non-empty and
  /// pairwise incomparable (an antichain), with no duplicates.
  bool IsSimple() const;

  /// Reduces the edge list to min(H): removes duplicates and any edge that
  /// is a superset of another edge.  Preserves the set of (minimal)
  /// transversals.  Empty edges are kept (they make the instance
  /// infeasible) unless \p drop_empty is set.
  void Minimize(bool drop_empty = false);

  /// True iff \p x intersects every edge (paper: x is a transversal of H).
  bool IsTransversal(const Bitset& x) const;

  /// True iff \p x is a transversal and no proper subset of x is.
  /// Equivalent characterization used here: x is a transversal and every
  /// v in x has a *private* edge E with x ∩ E = {v}.
  bool IsMinimalTransversal(const Bitset& x) const;

  /// Returns some edge disjoint from \p x (a witness that x is not a
  /// transversal), or npos if x is a transversal.
  size_t FindMissedEdge(const Bitset& x) const;

  /// Greedily removes vertices from \p x while it stays a transversal,
  /// scanning vertices in increasing order; returns a minimal transversal
  /// contained in x.  Requires x to be a transversal.
  Bitset MinimizeTransversal(Bitset x) const;

  /// The hypergraph whose edges are the complements of this one's edges
  /// (used by Theorem 7: H(S) = { R \ f(phi) : phi in Bd+(S) }).
  Hypergraph ComplementEdges() const;

  /// Per-vertex edge membership counts.
  std::vector<size_t> VertexDegrees() const;

  /// True iff the two hypergraphs have the same edge *sets* (order and
  /// duplicates ignored).
  bool SameEdgeSet(const Hypergraph& other) const;

  /// Edges sorted with a canonical order (for deterministic output/tests).
  std::vector<Bitset> SortedEdges() const;

  /// Renders as "{{0,1},{2}}"-style text, edges in canonical order.
  std::string ToString() const;

  /// Renders using vertex \p names (e.g. "{AC, D}").
  std::string Format(const std::vector<std::string>& names) const;

  /// Parses edge-list text: one edge per line, whitespace- or comma-
  /// separated vertex ids; '#' lines are skipped.  A blank (or
  /// comment-only) line is rejected as an empty edge — an empty edge makes
  /// every instance infeasible, so in a text file it is always a mistake.
  /// \p num_vertices 0 means "infer as max id + 1".  Hardened against
  /// malformed input (overlong lines, out-of-range ids, signs, non-numeric
  /// tokens); failures name \p origin and the offending line.
  static Result<Hypergraph> ParseEdgeListText(
      std::string_view text, size_t num_vertices = 0,
      const std::string& origin = "<edge-list>");

  /// Loads an edge-list file (see ParseEdgeListText).
  static Result<Hypergraph> LoadEdgeListFile(const std::string& path,
                                             size_t num_vertices = 0);

 private:
  size_t num_vertices_;
  std::vector<Bitset> edges_;
};

/// Removes duplicates and non-minimal (superset) sets from \p sets,
/// in place; the result is an antichain of the minimal elements.
void AntichainMinimize(std::vector<Bitset>* sets);

/// Removes duplicates and non-maximal (subset) sets from \p sets,
/// in place; the result is an antichain of the maximal elements.
void AntichainMaximize(std::vector<Bitset>* sets);

}  // namespace hgm
