#pragma once

/// \file transversal.h
/// \brief Interfaces for the hypergraph transversal problem (Problem 5, HTR).
///
/// Given a simple hypergraph H, compute Tr(H), the hypergraph of minimal
/// transversals.  The paper cares about two calling conventions:
///
///  * batch:       Tr(H) all at once (TransversalAlgorithm), and
///  * incremental: minimal transversals one by one, with per-item cost
///    measured against the number already emitted (TransversalEnumerator).
///    The Dualize and Advance algorithm (Section 5) consumes this form.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/bitset.h"
#include "common/cancellation.h"
#include "hypergraph/hypergraph.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hgm {

/// Counters shared by all transversal engines; used by the benches.
struct TransversalStats {
  /// Candidate sets generated/examined (engine-specific meaning).
  uint64_t candidates = 0;
  /// Minimality / transversality tests performed.
  uint64_t checks = 0;
  /// Recursive calls (Fredman-Khachiyan) or levels (levelwise).
  uint64_t recursion_nodes = 0;
};

/// RAII telemetry for one Compute() call: opens an "htr.<engine>.compute"
/// trace span and, on destruction, rolls the stats delta accumulated during
/// the call into htr.<engine>.* counters.  Engines instantiate one at the
/// top of Compute() (after resetting stats_), which covers every return
/// path.  Compute() is a cold entry point relative to its own inner loops,
/// so the dynamic metric names here go through the registry map instead of
/// the static-handle macros.
class TransversalComputeScope {
 public:
  TransversalComputeScope(const std::string& engine, const Hypergraph& h,
                          const TransversalStats* stats)
      : engine_(engine),
        stats_(stats),
        before_(*stats),
        span_("htr." + engine + ".compute", "htr",
              {{"edges", h.num_edges()}, {"vertices", h.num_vertices()}}) {}

  TransversalComputeScope(const TransversalComputeScope&) = delete;
  TransversalComputeScope& operator=(const TransversalComputeScope&) = delete;

  ~TransversalComputeScope() {
    span_.AddArg("candidates", stats_->candidates - before_.candidates);
    span_.AddArg("checks", stats_->checks - before_.checks);
    if (!obs::MetricsOn()) return;
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("htr." + engine_ + ".computes").Add(1);
    reg.GetCounter("htr." + engine_ + ".candidates")
        .Add(stats_->candidates - before_.candidates);
    reg.GetCounter("htr." + engine_ + ".checks")
        .Add(stats_->checks - before_.checks);
    reg.GetCounter("htr." + engine_ + ".recursion_nodes")
        .Add(stats_->recursion_nodes - before_.recursion_nodes);
  }

 private:
  std::string engine_;
  const TransversalStats* stats_;
  TransversalStats before_;
  obs::TraceSpan span_;  // destroyed after the body above, so AddArg works
};

/// Batch interface: computes Tr(H) in one call.
class TransversalAlgorithm {
 public:
  virtual ~TransversalAlgorithm() = default;

  /// Human-readable engine name ("berge", "fk", ...).
  virtual std::string name() const = 0;

  /// Computes the simple hypergraph of all minimal transversals of \p h.
  /// \p h need not be simple; it is minimized internally (transversals are
  /// invariant under minimization).  A hypergraph with an empty edge has no
  /// transversals (result has no edges); an edge-free hypergraph has the
  /// single minimal transversal ∅ (result is {∅}).
  virtual Hypergraph Compute(const Hypergraph& h) = 0;

  /// Counters from the most recent Compute() call.
  const TransversalStats& stats() const { return stats_; }

  /// Installs a cooperative stop signal.  Transversal engines return bare
  /// hypergraphs (no status channel), so a cancelled Compute() throws
  /// CancelledError from a cheap internal boundary — per edge level,
  /// every few thousand candidates — never mid-way through mutating the
  /// result into an inconsistent state the caller could observe.
  void SetCancellation(CancellationToken cancel) {
    cancel_ = std::move(cancel);
  }

 protected:
  /// Polls the installed token; engines call this at batched intervals so
  /// the no-cancellation path stays one predictable branch.
  void CheckCancelled(const char* where) const {
    cancel_.ThrowIfCancelled(where);
  }

  TransversalStats stats_;
  CancellationToken cancel_;
};

/// Incremental interface: yields minimal transversals one at a time.
///
/// Usage:
/// \code
///   enumerator->Reset(h);
///   Bitset t;
///   while (enumerator->Next(&t)) Consume(t);
/// \endcode
class TransversalEnumerator {
 public:
  virtual ~TransversalEnumerator() = default;

  virtual std::string name() const = 0;

  /// Binds the enumerator to hypergraph \p h and rewinds it.
  virtual void Reset(const Hypergraph& h) = 0;

  /// Produces the next minimal transversal; returns false when exhausted.
  /// The order is engine-specific but deterministic.
  virtual bool Next(Bitset* out) = 0;

  /// Installs a cooperative stop signal; a cancelled Next() throws
  /// CancelledError (same contract as TransversalAlgorithm).
  void SetCancellation(CancellationToken cancel) {
    cancel_ = std::move(cancel);
  }

 protected:
  void CheckCancelled(const char* where) const {
    cancel_.ThrowIfCancelled(where);
  }

  CancellationToken cancel_;
};

/// Wraps a batch algorithm as an enumerator (computes everything on the
/// first Next() and then replays).  This is the "lazy Berge" used when an
/// incremental engine is not required for the complexity claim under test.
class BatchEnumerator : public TransversalEnumerator {
 public:
  explicit BatchEnumerator(std::unique_ptr<TransversalAlgorithm> algo)
      : algo_(std::move(algo)) {}

  std::string name() const override { return algo_->name() + "-batch"; }

  void Reset(const Hypergraph& h) override {
    hypergraph_ = h;
    computed_ = false;
    next_ = 0;
  }

  bool Next(Bitset* out) override {
    if (!computed_) {
      algo_->SetCancellation(cancel_);
      result_ = algo_->Compute(hypergraph_).SortedEdges();
      computed_ = true;
    }
    if (next_ >= result_.size()) return false;
    *out = result_[next_++];
    return true;
  }

 private:
  std::unique_ptr<TransversalAlgorithm> algo_;
  Hypergraph hypergraph_{0};
  std::vector<Bitset> result_;
  bool computed_ = false;
  size_t next_ = 0;
};

}  // namespace hgm
