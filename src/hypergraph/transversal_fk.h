#pragma once

/// \file transversal_fk.h
/// \brief Fredman-Khachiyan duality testing and incremental HTR ([10]).
///
/// The paper's sub-exponential bounds (Corollary 22, Corollary 29) rest on
/// the Fredman-Khachiyan algorithm: deciding whether two monotone DNFs
/// f (terms = edges of H) and g are *dual* -- g(x) = ¬f(¬x) for all x --
/// in time (|f|+|g|)^{O(log(|f|+|g|))}.  In hypergraph terms, duality of
/// (H, G) is exactly G = Tr(H).
///
/// When the pair is not dual the tester returns a *witness* assignment x
/// with g(x) != ¬f(¬x).  Self-reduction then yields an incremental
/// transversal enumerator: keep a set G of minimal transversals found so
/// far; while (H, G) is not dual, the witness is a transversal containing
/// no member of G, so greedily minimizing it yields a new minimal
/// transversal.  Each Next() costs one duality test, giving the
/// incremental T(I, i) bound the paper quotes.
///
/// This implementation follows algorithm A of [10]: trivial-case handling,
/// the pairwise intersection test, exact solution of small subproblems,
/// and recursion on a most-frequent variable with witness lifting.

#include "hypergraph/transversal.h"

namespace hgm {

/// Outcome of a duality test.
struct DualityResult {
  /// True iff g = f^d, i.e. the second hypergraph is exactly Tr(first).
  bool dual = false;
  /// If !dual: an assignment (as the set of true variables) with
  /// g(x) != ¬f(¬x).  Unspecified when dual.
  Bitset witness;
};

/// Fredman-Khachiyan algorithm A.
class FkDualityTester {
 public:
  /// Decides whether \p g equals Tr(\p f).  Both arguments are minimized
  /// internally; they must share the vertex universe.
  DualityResult Check(const Hypergraph& f, const Hypergraph& g);

  /// Installs a cooperative stop signal, polled once per recursion node;
  /// a cancelled Check() throws CancelledError.
  void SetCancellation(CancellationToken cancel) {
    cancel_ = std::move(cancel);
  }

  /// Recursion nodes visited by the most recent Check().
  uint64_t recursion_nodes() const { return recursion_nodes_; }

  /// Maximum recursion depth of the most recent Check().
  size_t max_depth() const { return max_depth_; }

 private:
  DualityResult CheckRec(std::vector<Bitset> f, std::vector<Bitset> g,
                         const Bitset& free, size_t depth);

  uint64_t recursion_nodes_ = 0;
  size_t max_depth_ = 0;
  CancellationToken cancel_;
};

/// Incremental minimal-transversal enumerator driven by duality witnesses.
class FkTransversalEnumerator : public TransversalEnumerator {
 public:
  std::string name() const override { return "fk"; }

  void Reset(const Hypergraph& h) override;
  bool Next(Bitset* out) override;

  /// Total FK recursion nodes over all Next() calls since Reset().
  uint64_t recursion_nodes() const { return recursion_nodes_; }

 private:
  Hypergraph input_{0};
  std::vector<Bitset> found_;
  bool emitted_empty_ = false;
  bool done_ = false;
  uint64_t recursion_nodes_ = 0;
};

/// Batch HTR via the FK enumerator (runs it to exhaustion).
class FkTransversals : public TransversalAlgorithm {
 public:
  std::string name() const override { return "fk"; }

  Hypergraph Compute(const Hypergraph& h) override;
};

}  // namespace hgm
