#pragma once

/// \file transversal_brute.h
/// \brief Exhaustive reference implementation of HTR for small universes.
///
/// Enumerates all 2^n subsets and keeps the minimal transversals.  Used as
/// the ground-truth oracle in tests and as the "brute force enumeration"
/// baseline that Corollary 15 improves upon.

#include "hypergraph/transversal.h"

namespace hgm {

/// O(2^n · |H|) reference algorithm; intended for n <= ~24.
class BruteForceTransversals : public TransversalAlgorithm {
 public:
  std::string name() const override { return "brute"; }

  Hypergraph Compute(const Hypergraph& h) override;
};

}  // namespace hgm
