#pragma once

/// \file generators.h
/// \brief Synthetic hypergraph families for tests and experiments.

#include "common/random.h"
#include "hypergraph/hypergraph.h"

namespace hgm {

/// The matching hypergraph M_n of Example 19: n even, edges
/// {x_{2i-1}, x_{2i}} for i = 1..n/2.  |Tr(M_n)| = 2^{n/2}: a minimal
/// transversal picks one endpoint per edge.  This is the family whose
/// intermediate negative border blows up inside Dualize and Advance.
Hypergraph MatchingHypergraph(size_t n);

/// The complete graph K_n as a 2-uniform hypergraph (all vertex pairs).
/// Tr(K_n) = the n subsets of size n-1 (complements of single vertices).
Hypergraph CompleteGraph(size_t n);

/// Random hypergraph with \p num_edges edges drawn uniformly from the
/// k-subsets of {0..n-1}; minimized, so the result may have fewer edges.
Hypergraph RandomUniform(size_t n, size_t num_edges, size_t k, Rng* rng);

/// Random hypergraph whose edges all have size >= n - k ("co-small"): the
/// Corollary 15 regime.  Each edge is the complement of a uniformly random
/// non-empty subset of size <= k.
Hypergraph RandomCoSmall(size_t n, size_t num_edges, size_t k, Rng* rng);

/// Random hypergraph where each vertex joins each edge independently with
/// probability \p p; empty edges are re-drawn.  Minimized.
Hypergraph RandomBernoulli(size_t n, size_t num_edges, double p, Rng* rng);

/// A path P_n: edges {i, i+1}.  |Tr| follows a Fibonacci-like recurrence;
/// useful as a structured small-degree family.
Hypergraph PathGraph(size_t n);

}  // namespace hgm
