#pragma once

/// \file transversal_berge.h
/// \brief Berge's sequential-multiplication algorithm for Tr(H).
///
/// Classic algorithm (Berge 1973, [4] in the paper): process edges one at a
/// time, maintaining the minimal transversals of the prefix processed so
/// far.  For a new edge E, transversals already intersecting E survive;
/// every other transversal T spawns candidates T ∪ {v}, v ∈ E, which are
/// kept only if minimal with respect to the processed prefix.
///
/// Minimality is tested with the private-edge criterion against the prefix,
/// which avoids pairwise subset filtering of the candidate pool.
///
/// Worst-case exponential in intermediate stages (see Example 19 /
/// bench_example19_blowup) but a strong practical baseline.

#include "hypergraph/transversal.h"

namespace hgm {

/// Sequential Berge multiplication with private-edge minimality filtering.
class BergeTransversals : public TransversalAlgorithm {
 public:
  std::string name() const override { return "berge"; }

  Hypergraph Compute(const Hypergraph& h) override;

  /// Peak number of minimal transversals held for any edge prefix during
  /// the most recent Compute(); this is the quantity Example 19 blows up.
  size_t peak_intermediate_size() const { return peak_intermediate_size_; }

 private:
  size_t peak_intermediate_size_ = 0;
};

}  // namespace hgm
