#pragma once

/// \file transversal_mmcs.h
/// \brief MMCS: depth-first minimal-transversal enumeration
/// (Murakami & Uno, "Efficient algorithms for dualizing large-scale
/// hypergraphs", 2014).
///
/// A modern baseline the paper predates: maintains, along a DFS over
/// partial transversals S,
///   * uncov     — edges not yet hit by S,
///   * crit(u)   — the edges hit ONLY by u (u's private edges),
///   * cand      — vertices still allowed to extend S,
/// and branches on the vertices of an uncovered edge with the fewest
/// remaining candidates.  Every minimal transversal is emitted exactly
/// once, with polynomial memory — unlike Berge, whose intermediate
/// antichains can blow up (Example 19), and truly incrementally — unlike a
/// batch dualization.
///
/// The enumerator form (explicit DFS stack) is exactly what Dualize and
/// Advance's Step 4-7 wants: it yields transversals one at a time and can
/// be abandoned as soon as a counterexample appears.

#include <memory>
#include <vector>

#include "hypergraph/transversal.h"

namespace hgm {

/// Pull-based MMCS: yields minimal transversals one per Next() call.
class MmcsEnumerator : public TransversalEnumerator {
 public:
  std::string name() const override { return "mmcs"; }

  void Reset(const Hypergraph& h) override;
  bool Next(Bitset* out) override;

  /// DFS nodes expanded since Reset() (work measure for ablations).
  uint64_t nodes() const { return nodes_; }

 private:
  struct Frame {
    /// Branch vertices: the chosen uncovered edge ∩ cand at frame entry.
    std::vector<size_t> branch;
    size_t next_branch = 0;
    /// Vertices removed from cand at frame entry (= branch), restored on
    /// frame exit.
    /// Undo state for the currently applied branch vertex, if any.
    bool has_applied = false;
    size_t applied_v = 0;
    Bitset saved_uncov{0};
    std::vector<std::pair<size_t, Bitset>> saved_crit;
  };

  /// Enters a new frame for the current (non-empty) uncov.
  void PushFrame();
  /// Applies branch vertex \p v on top of the current state.
  void Apply(Frame* f, size_t v);
  /// Undoes the top frame's applied vertex.
  void Undo(Frame* f);

  size_t num_vertices_ = 0;
  std::vector<Bitset> edges_;     // minimized, non-empty
  std::vector<Bitset> incidence_; // vertex -> bitset over edge indices
  Bitset uncov_{0};               // over edge indices
  Bitset cand_{0};                // over vertices
  std::vector<size_t> partial_;   // S as a vertex stack
  std::vector<Bitset> crit_;      // vertex -> bitset over edge indices
  std::vector<Frame> stack_;
  bool done_ = false;
  bool emit_empty_ = false;
  uint64_t nodes_ = 0;
};

/// Batch HTR via MMCS.
class MmcsTransversals : public TransversalAlgorithm {
 public:
  std::string name() const override { return "mmcs"; }

  Hypergraph Compute(const Hypergraph& h) override;
};

}  // namespace hgm
