#include "hypergraph/hypergraph.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "common/parse.h"

namespace hgm {

namespace {

/// Sort key: cardinality first, then word order; gives deterministic,
/// human-friendly edge listings.
bool CanonicalLess(const Bitset& a, const Bitset& b) {
  size_t ca = a.Count(), cb = b.Count();
  if (ca != cb) return ca < cb;
  return a < b;
}

}  // namespace

size_t Hypergraph::TotalEdgeSize() const {
  size_t total = 0;
  for (const auto& e : edges_) total += e.Count();
  return total;
}

size_t Hypergraph::MinEdgeSize() const {
  size_t best = Bitset::npos;
  for (const auto& e : edges_) best = std::min(best, e.Count());
  return best;
}

size_t Hypergraph::MaxEdgeSize() const {
  size_t best = 0;
  for (const auto& e : edges_) best = std::max(best, e.Count());
  return best;
}

bool Hypergraph::HasEmptyEdge() const {
  for (const auto& e : edges_) {
    if (e.None()) return true;
  }
  return false;
}

bool Hypergraph::IsSimple() const {
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].None()) return false;
    for (size_t j = 0; j < edges_.size(); ++j) {
      // Any containment between distinct positions (including duplicates)
      // violates the antichain property.
      if (i != j && edges_[i].IsSubsetOf(edges_[j])) return false;
    }
  }
  return true;
}

void Hypergraph::Minimize(bool drop_empty) {
  AntichainMinimize(&edges_);
  if (drop_empty) {
    std::erase_if(edges_, [](const Bitset& e) { return e.None(); });
  }
}

bool Hypergraph::IsTransversal(const Bitset& x) const {
  for (const auto& e : edges_) {
    if (!x.Intersects(e)) return false;
  }
  return true;
}

bool Hypergraph::IsMinimalTransversal(const Bitset& x) const {
  if (!IsTransversal(x)) return false;
  // Every v in x needs a private edge E with x ∩ E = {v}.
  std::vector<bool> has_private(num_vertices_, false);
  for (const auto& e : edges_) {
    if (x.IntersectionCount(e) == 1) {
      Bitset hit = x & e;
      has_private[hit.FindFirst()] = true;
    }
  }
  bool minimal = true;
  x.ForEach([&](size_t v) {
    if (!has_private[v]) minimal = false;
  });
  return minimal;
}

size_t Hypergraph::FindMissedEdge(const Bitset& x) const {
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (!x.Intersects(edges_[i])) return i;
  }
  return Bitset::npos;
}

Bitset Hypergraph::MinimizeTransversal(Bitset x) const {
  assert(IsTransversal(x));
  for (size_t v = x.FindFirst(); v != Bitset::npos; v = x.FindNext(v)) {
    Bitset candidate = x.WithoutBit(v);
    if (IsTransversal(candidate)) x = std::move(candidate);
  }
  return x;
}

Hypergraph Hypergraph::ComplementEdges() const {
  Hypergraph out(num_vertices_);
  for (const auto& e : edges_) out.AddEdge(~e);
  return out;
}

std::vector<size_t> Hypergraph::VertexDegrees() const {
  std::vector<size_t> deg(num_vertices_, 0);
  for (const auto& e : edges_) {
    e.ForEach([&](size_t v) { ++deg[v]; });
  }
  return deg;
}

bool Hypergraph::SameEdgeSet(const Hypergraph& other) const {
  if (num_vertices_ != other.num_vertices_) return false;
  std::unordered_set<Bitset, BitsetHash> mine(edges_.begin(), edges_.end());
  std::unordered_set<Bitset, BitsetHash> theirs(other.edges_.begin(),
                                                other.edges_.end());
  return mine == theirs;
}

std::vector<Bitset> Hypergraph::SortedEdges() const {
  std::vector<Bitset> out = edges_;
  std::sort(out.begin(), out.end(), CanonicalLess);
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Hypergraph::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& e : SortedEdges()) {
    if (!first) os << ", ";
    first = false;
    os << e.ToString();
  }
  os << "}";
  return os.str();
}

std::string Hypergraph::Format(const std::vector<std::string>& names) const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& e : SortedEdges()) {
    if (!first) os << ", ";
    first = false;
    os << e.Format(names);
  }
  os << "}";
  return os.str();
}

Result<Hypergraph> Hypergraph::ParseEdgeListText(std::string_view text,
                                                 size_t num_vertices,
                                                 const std::string& origin) {
  std::vector<std::vector<size_t>> edges;
  size_t max_id = 0;
  bool any_vertex = false;
  std::vector<std::string_view> tokens;
  const uint64_t id_cap =
      num_vertices != 0 ? static_cast<uint64_t>(num_vertices) - 1
                        : kMaxParseId;

  Status s = ForEachDataLine(
      text, origin, [&](size_t line_no, std::string_view line) {
        SplitDataTokens(line, &tokens);
        if (tokens.empty()) {
          return Status::InvalidArgument(
              origin + ":" + std::to_string(line_no) +
              ": empty edge (an empty edge admits no transversal)");
        }
        std::vector<size_t> edge;
        edge.reserve(tokens.size());
        for (std::string_view token : tokens) {
          uint64_t id = 0;
          Status ts =
              ParseUnsignedToken(token, id_cap, origin, line_no, &id);
          if (!ts.ok()) return ts;
          edge.push_back(static_cast<size_t>(id));
          max_id = std::max(max_id, static_cast<size_t>(id));
          any_vertex = true;
        }
        edges.push_back(std::move(edge));
        return Status::OK();
      });
  if (!s.ok()) return s;

  size_t n = num_vertices != 0 ? num_vertices : (any_vertex ? max_id + 1 : 0);
  return Hypergraph::FromEdgeLists(n, edges);
}

Result<Hypergraph> Hypergraph::LoadEdgeListFile(const std::string& path,
                                                size_t num_vertices) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failure on " + path);
  return ParseEdgeListText(buffer.str(), num_vertices, path);
}

void AntichainMinimize(std::vector<Bitset>* sets) {
  auto& v = *sets;
  // Sort by cardinality so any superset appears after its subset, then a
  // quadratic-in-the-antichain filter keeps only minimal, unique sets.
  std::sort(v.begin(), v.end(), CanonicalLess);
  std::vector<Bitset> kept;
  kept.reserve(v.size());
  for (const auto& s : v) {
    bool dominated = false;
    for (const auto& k : kept) {
      if (k.IsSubsetOf(s)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(s);
  }
  v = std::move(kept);
}

void AntichainMaximize(std::vector<Bitset>* sets) {
  auto& v = *sets;
  std::sort(v.begin(), v.end(), [](const Bitset& a, const Bitset& b) {
    size_t ca = a.Count(), cb = b.Count();
    if (ca != cb) return ca > cb;
    return a < b;
  });
  std::vector<Bitset> kept;
  kept.reserve(v.size());
  for (const auto& s : v) {
    bool dominated = false;
    for (const auto& k : kept) {
      if (s.IsSubsetOf(k)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(s);
  }
  v = std::move(kept);
}

}  // namespace hgm
