#pragma once

/// \file transversal_levelwise.h
/// \brief The paper's new HTR special case (Corollary 15).
///
/// If every edge of H on n vertices has size at least n - k, then every
/// non-transversal is contained in the (size <= k) complement of some edge.
/// Declaring "X is interesting" to mean "X is NOT a transversal" gives a
/// monotone (downward-closed) predicate whose negative border is exactly
/// Tr(H).  Running the levelwise algorithm (Algorithm 9) bottom-up
/// therefore computes Tr(H), touching only sets of size <= k+1; for
/// k = O(log n) this is input-polynomial time -- improving on the
/// brute-force enumeration of Eiter & Gottlob (Theorem 5.4 of [8]), which
/// needs constant k.
///
/// Note (as the paper stresses) the algorithm never inspects the structure
/// of H beyond asking "is this subset a transversal?".

#include "common/thread_pool.h"
#include "hypergraph/transversal.h"

namespace hgm {

/// Levelwise bottom-up computation of Tr(H); efficient iff Tr(H) consists
/// of small sets (equivalently, all edges are large).
///
/// Each lattice level is evaluated as one batch of independent
/// Is-transversal checks fanned out over a thread pool;
/// Hypergraph::IsTransversal is const with no shared mutable state, and
/// results are reassembled in candidate order, so the computed Tr(H) and
/// query count are identical at every thread count.
class LevelwiseTransversals : public TransversalAlgorithm {
 public:
  /// \param max_level safety cap on the lattice level explored; the
  ///   algorithm aborts (assert) if a transversal frontier has not been
  ///   closed by then.  Defaults to the universe size (no cap).
  /// \param pool worker pool for level batches; nullptr = global pool.
  explicit LevelwiseTransversals(size_t max_level = Bitset::npos,
                                 ThreadPool* pool = nullptr)
      : max_level_(max_level), pool_(PoolOrGlobal(pool)) {}

  std::string name() const override { return "levelwise"; }

  Hypergraph Compute(const Hypergraph& h) override;

  /// Number of Is-transversal evaluations in the last Compute(); this is
  /// the paper's query measure |Th| + |Bd-(Th)|.
  uint64_t queries() const { return queries_; }

  /// Highest lattice level at which an interesting (non-transversal) set
  /// was found, i.e. the paper's k.
  size_t levels() const { return levels_; }

 private:
  size_t max_level_;
  ThreadPool* pool_;
  uint64_t queries_ = 0;
  size_t levels_ = 0;
};

}  // namespace hgm
