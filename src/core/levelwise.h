#pragma once

/// \file levelwise.h
/// \brief The levelwise algorithm (Algorithm 9) for languages representable
/// as sets.
///
/// Walks the subset lattice bottom-up, alternating candidate generation
/// (which never touches the data) with evaluation of the quality predicate
/// q.  On termination:
///
///  * theory          = Th(L, r, q)            (all interesting sentences)
///  * positive_border = MTh = Bd+(Th)          (maximal interesting)
///  * negative_border = Bd-(Th)                (minimal non-interesting
///                                              among generated candidates)
///  * queries         = |Th| + |Bd-(Th)|       (Theorem 10, exactly)
///
/// Theorem 12 bounds queries by dc(k) * width(L) * |MTh|; for frequent
/// sets this is 2^k * n * |MTh| (Corollary 13).

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "core/oracle.h"

namespace hgm {

/// Output of a levelwise run.
struct LevelwiseResult {
  /// Th(L, r, q): every interesting sentence, canonically sorted.
  std::vector<Bitset> theory;
  /// MTh(L, r, q) = Bd+(Th): the maximal interesting sentences.
  std::vector<Bitset> positive_border;
  /// Bd-(Th): the minimal non-interesting sentences.
  std::vector<Bitset> negative_border;
  /// Evaluations of q performed; equals theory.size() +
  /// negative_border.size() (Theorem 10).
  uint64_t queries = 0;
  /// Candidates generated across all levels (= queries: every candidate is
  /// evaluated exactly once).
  uint64_t candidates = 0;
  /// Number of candidate-generation/evaluation iterations executed
  /// (the largest i with C_i nonempty).
  size_t levels = 0;

  /// Per-level bookkeeping, index = set size: candidates and interesting
  /// counts, as in the classic association-mining tables of [2].
  std::vector<size_t> candidates_per_level;
  std::vector<size_t> interesting_per_level;
};

/// Options controlling a levelwise run.
struct LevelwiseOptions {
  /// Stop after this lattice level (sets of this size are still evaluated).
  /// Bitset::npos means no cap.  With a cap the returned borders are the
  /// borders of the truncated theory.
  size_t max_level = Bitset::npos;
  /// If false, `theory` is left empty to save memory on large runs
  /// (borders and counters are still filled in).
  bool record_theory = true;
};

/// Runs Algorithm 9 against \p oracle (which must be monotone downward).
LevelwiseResult RunLevelwise(InterestingnessOracle* oracle,
                             const LevelwiseOptions& options = {});

}  // namespace hgm
