#pragma once

/// \file levelwise.h
/// \brief The levelwise algorithm (Algorithm 9) for languages representable
/// as sets.
///
/// Walks the subset lattice bottom-up, alternating candidate generation
/// (which never touches the data) with evaluation of the quality predicate
/// q.  On termination:
///
///  * theory          = Th(L, r, q)            (all interesting sentences)
///  * positive_border = MTh = Bd+(Th)          (maximal interesting)
///  * negative_border = Bd-(Th)                (minimal non-interesting
///                                              among generated candidates)
///  * queries         = |Th| + |Bd-(Th)|       (Theorem 10, exactly)
///
/// Theorem 12 bounds queries by dc(k) * width(L) * |MTh|; for frequent
/// sets this is 2^k * n * |MTh| (Corollary 13).

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitset.h"
#include "common/run_budget.h"
#include "core/checkpoint.h"
#include "core/oracle.h"

namespace hgm {

/// Output of a levelwise run.
struct LevelwiseResult {
  /// Th(L, r, q): every interesting sentence, canonically sorted.
  std::vector<Bitset> theory;
  /// MTh(L, r, q) = Bd+(Th): the maximal interesting sentences.
  std::vector<Bitset> positive_border;
  /// Bd-(Th): the minimal non-interesting sentences.
  std::vector<Bitset> negative_border;
  /// Evaluations of q performed; equals theory.size() +
  /// negative_border.size() (Theorem 10).
  uint64_t queries = 0;
  /// Candidates generated across all levels (= queries: every candidate is
  /// evaluated exactly once).
  uint64_t candidates = 0;
  /// Number of candidate-generation/evaluation iterations executed
  /// (the largest i with C_i nonempty).
  size_t levels = 0;

  /// Per-level bookkeeping, index = set size: candidates and interesting
  /// counts, as in the classic association-mining tables of [2].
  std::vector<size_t> candidates_per_level;
  std::vector<size_t> interesting_per_level;

  /// kCompleted for a full run.  Anything else means the budget tripped
  /// (or the token was cancelled) at a level boundary: the result is the
  /// certified completed-level prefix — theory still downward closed,
  /// borders still antichains, negative border containing only sentences
  /// actually evaluated — and `checkpoint` resumes the run.
  StopReason stop_reason = StopReason::kCompleted;
  /// Resume state; engaged iff stop_reason != kCompleted.
  std::optional<Checkpoint> checkpoint;
};

/// Options controlling a levelwise run.
struct LevelwiseOptions {
  /// Stop after this lattice level (sets of this size are still evaluated).
  /// Bitset::npos means no cap.  With a cap the returned borders are the
  /// borders of the truncated theory.
  size_t max_level = Bitset::npos;
  /// If false, `theory` is left empty to save memory on large runs
  /// (borders and counters are still filled in).
  bool record_theory = true;
  /// Resource envelope (wall clock, Is-interesting queries, candidate
  /// bytes, cancellation), enforced at level boundaries; a level whose
  /// batch would cross a cap is never evaluated.  Default: unlimited.
  RunBudget budget;
};

/// Runs Algorithm 9 against \p oracle (which must be monotone downward).
LevelwiseResult RunLevelwise(InterestingnessOracle* oracle,
                             const LevelwiseOptions& options = {});

/// Continues an interrupted run from \p checkpoint (kind "levelwise",
/// written by a budget-tripped RunLevelwise) against the same oracle.
/// The resumed run's final output — theory, both borders, all counters —
/// is bit-identical to a never-interrupted run's.  options.budget applies
/// afresh (with queries counted cumulatively across the original run);
/// options.record_theory is taken from the checkpoint.
Result<LevelwiseResult> ResumeLevelwise(InterestingnessOracle* oracle,
                                        const Checkpoint& checkpoint,
                                        const LevelwiseOptions& options = {});

/// The certified-partial view of \p result (for budget-tripped runs; for
/// completed runs the checkpoint member is empty).
PartialTheory AsPartialTheory(const LevelwiseResult& result);

}  // namespace hgm
