#pragma once

/// \file dualize_advance.h
/// \brief The Dualize and Advance algorithm (Algorithm 16, Section 5).
///
/// Computes MTh(L, r, q) directly, without enumerating the whole theory:
///
///   1. maintain the maximal interesting sets C_i found so far;
///   2. enumerate the minimal transversals of the complements of C_i
///      (= Bd-(C_i) by Theorem 7);
///   3. any *interesting* transversal is a counterexample: greedily extend
///      it to a new maximal interesting set (one attribute at a time);
///   4. if every transversal is non-interesting, C_i = MTh and the
///      enumerated transversals are exactly Bd-(MTh).
///
/// Guarantees proved in the paper and measured by the benches:
///   Lemma 20   — at most |Bd-(MTh)| transversals are enumerated per
///                iteration before a counterexample appears;
///   Theorem 21 — at most |MTh| * (|Bd-(MTh)| + rank(MTh) * width) queries;
///   Corollary 22 — with Fredman-Khachiyan as the subroutine, total time
///                is sub-exponential: t(|MTh| + |Bd-|), t(m)=m^{O(log m)}.
///
/// The enumerator is pluggable so the Lemma 20 / Example 19 experiments can
/// contrast the incremental FK enumerator with batch Berge dualization.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/bitset.h"
#include "common/run_budget.h"
#include "core/checkpoint.h"
#include "core/oracle.h"
#include "hypergraph/transversal.h"

namespace hgm {

/// Output of a Dualize and Advance run.
struct DualizeAdvanceResult {
  /// MTh(L, r, q): every maximal interesting sentence, canonically sorted.
  std::vector<Bitset> positive_border;
  /// Bd-(MTh): the minimal non-interesting sentences (the transversals of
  /// the final iteration).
  std::vector<Bitset> negative_border;
  /// Evaluations of q performed.
  uint64_t queries = 0;
  /// Total minimal transversals handed out by the enumerator across all
  /// iterations.
  uint64_t transversals_enumerated = 0;
  /// Iterations of the outer loop (= |MTh| + 1: one per discovered maximal
  /// set plus the final certifying pass).
  size_t iterations = 0;
  /// Max transversals enumerated in any single iteration before a
  /// counterexample (Lemma 20 bounds this by |Bd-(MTh)|).
  size_t max_enumerated_one_iteration = 0;
  /// If options.measure_intermediate_borders: |Tr(complements of C_i))| for
  /// each iteration i — the quantity Example 19 blows up to 2^{n/2}.
  std::vector<size_t> intermediate_border_sizes;

  /// kCompleted for a full run.  Otherwise the budget tripped at (or the
  /// token cancelled within) an iteration: `positive_border` holds the
  /// maximal interesting sets certified so far (each genuinely maximal,
  /// so the set is an antichain), `negative_border` holds minimal
  /// non-interesting sets certified by completed iterations, and
  /// `checkpoint` resumes the run.  An aborted iteration leaves no trace
  /// in the counters, so resuming replays it bit-identically.
  StopReason stop_reason = StopReason::kCompleted;
  /// Resume state; engaged iff stop_reason != kCompleted.
  std::optional<Checkpoint> checkpoint;
};

/// Options for RunDualizeAdvance.
struct DualizeAdvanceOptions {
  /// Factory for the transversal-enumerator subroutine; defaults to the
  /// incremental Fredman-Khachiyan enumerator.
  std::function<std::unique_ptr<TransversalEnumerator>()> make_enumerator;
  /// If set, each iteration additionally dualizes C_i in full (with Berge)
  /// to record |Bd-(C_i)|.  Expensive; for the Example 19 experiment.
  bool measure_intermediate_borders = false;
  /// Resource envelope, checked at iteration boundaries and before every
  /// Is-interesting query inside an iteration.  A counterexample's greedy
  /// extension always runs to completion (at most width extra queries),
  /// so discovered maximal sets are never half-extended.
  RunBudget budget;
};

/// Runs Algorithm 16 against \p oracle (monotone downward).
DualizeAdvanceResult RunDualizeAdvance(
    InterestingnessOracle* oracle, const DualizeAdvanceOptions& options = {});

/// Continues an interrupted run from \p checkpoint (kind
/// "dualize_advance") against the same oracle.  The final output is
/// bit-identical to a never-interrupted run's; options.budget applies
/// afresh with queries counted cumulatively.
Result<DualizeAdvanceResult> ResumeDualizeAdvance(
    InterestingnessOracle* oracle, const Checkpoint& checkpoint,
    const DualizeAdvanceOptions& options = {});

/// The certified-partial view of \p result.  `theory` is left empty — the
/// algorithm never materializes Th, only its borders.
PartialTheory AsPartialTheory(const DualizeAdvanceResult& result);

}  // namespace hgm
