#include "core/verification.h"

#include "core/audit.h"
#include "core/theory.h"
#include "hypergraph/transversal_berge.h"

namespace hgm {

VerificationResult VerifyMaxTheory(const std::vector<Bitset>& s,
                                   InterestingnessOracle* oracle,
                                   TransversalAlgorithm* engine,
                                   bool exhaustive) {
  VerificationResult result;
  const size_t n = oracle->num_items();

  // Syntactic precondition (no data access): MTh is an antichain.
  for (size_t i = 0; i < s.size(); ++i) {
    for (size_t j = 0; j < s.size(); ++j) {
      if (i != j && s[i].IsSubsetOf(s[j])) {
        result.failures.push_back(s[i]);
        return result;
      }
    }
  }

  BergeTransversals default_engine;
  if (engine == nullptr) engine = &default_engine;

  // Bd-(S) from S alone, via Theorem 7.
  std::vector<Bitset> bd_minus = NegativeBorderViaTransversals(s, n, engine);
  result.border_size = s.size() + bd_minus.size();
  if (audit::kEnabled) {
    // Cross-checks the caller-chosen engine against an independent Berge
    // dualization (a real check whenever engine != Berge).
    audit::AuditBorderDuality(s, bd_minus, n, "verification");
  }

  bool ok = true;
  // Positive side: every maximal element must be interesting.
  for (const auto& x : s) {
    ++result.queries;
    if (!oracle->IsInteresting(x)) {
      ok = false;
      result.failures.push_back(x);
      if (!exhaustive) return result;
    }
  }
  // Negative side: every element of Bd-(S) must be non-interesting.  By
  // monotonicity this certifies Th = downward-closure(S).
  for (const auto& x : bd_minus) {
    ++result.queries;
    if (oracle->IsInteresting(x)) {
      ok = false;
      result.failures.push_back(x);
      if (!exhaustive) return result;
    }
  }
  result.verified = ok;
  return result;
}

}  // namespace hgm
