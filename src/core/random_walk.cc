#include "core/random_walk.h"

#include <unordered_set>

#include "core/theory.h"
#include "hypergraph/transversal_mmcs.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hgm {

Bitset RandomMaximalExtension(InterestingnessOracle* oracle,
                              const Bitset& start, Rng* rng) {
  const size_t n = oracle->num_items();
  std::vector<size_t> order;
  order.reserve(n);
  for (size_t v = 0; v < n; ++v) {
    if (!start.Test(v)) order.push_back(v);
  }
  rng->Shuffle(order);
  Bitset current = start;
  for (size_t v : order) {
    Bitset candidate = current.WithBit(v);
    if (oracle->IsInteresting(candidate)) current = std::move(candidate);
  }
  return current;
}

RandomWalkResult RunRandomizedDualizeAdvance(
    InterestingnessOracle* oracle, Rng* rng,
    const RandomWalkOptions& options) {
  RandomWalkResult result;
  const size_t n = oracle->num_items();
  HGM_OBS_COUNT("rw.runs", 1);
  obs::TraceSpan run_span("rw.run", "core", {{"width", n}});
  // Walks from ∅ and repeated dualization rounds re-ask many sentences;
  // the thread-safe cache answers repeats for free while still charging
  // every ask to raw_queries(), so result.queries (the paper's measure)
  // is unchanged by memoization.
  CachedOracle counter(oracle);

  // The empty sentence decides whether the theory is empty.
  if (!counter.IsInteresting(Bitset(n))) {
    result.negative_border.push_back(Bitset(n));
    result.queries = counter.raw_queries();
    return result;
  }

  std::vector<Bitset> maximal;
  std::unordered_set<Bitset, BitsetHash> seen;
  auto add_maximal = [&](Bitset m) -> bool {
    if (!seen.insert(m).second) return false;
    maximal.push_back(std::move(m));
    return true;
  };

  // Walk rounds alternate with certification dualizations.
  while (true) {
    // --- random-walk phase -------------------------------------------
    {
      obs::TraceSpan walk_span("rw.walk_round", "core",
                               {{"maximal_so_far", maximal.size()}});
      size_t stale = 0;
      size_t walks_this_round = 0;
      for (size_t w = 0;
           w < options.walks_per_round && stale < options.stale_walk_limit;
           ++w) {
        ++result.walks;
        ++walks_this_round;
        Bitset m = RandomMaximalExtension(&counter, Bitset(n), rng);
        if (add_maximal(m)) {
          ++result.found_by_walks;
          stale = 0;
        } else {
          ++stale;
        }
      }
      HGM_OBS_COUNT("rw.walks", walks_this_round);
      walk_span.AddArg("walks", walks_this_round);
      walk_span.AddArg("maximal_after", maximal.size());
    }

    // --- dualization phase --------------------------------------------
    ++result.dualizations;
    HGM_OBS_COUNT("rw.dualizations", 1);
    obs::TraceSpan dual_span("rw.dualization", "core",
                             {{"round", result.dualizations}});
    Hypergraph complements(n);
    for (const auto& m : maximal) complements.AddEdge(~m);
    MmcsEnumerator enumerator;
    enumerator.Reset(complements);
    std::vector<Bitset> non_interesting;
    Bitset x(n);
    bool advanced = false;
    while (enumerator.Next(&x)) {
      if (counter.IsInteresting(x)) {
        // Unexplored region: extend (randomly) and continue walking.
        add_maximal(RandomMaximalExtension(&counter, x, rng));
        advanced = true;
        break;
      }
      non_interesting.push_back(x);
    }
    if (!advanced) {
      result.negative_border = std::move(non_interesting);
      break;
    }
  }

  CanonicalSort(&maximal);
  result.positive_border = std::move(maximal);
  CanonicalSort(&result.negative_border);
  result.queries = counter.raw_queries();
  HGM_OBS_COUNT("rw.found_by_walks", result.found_by_walks);
  HGM_OBS_COUNT("rw.queries", result.queries);
  run_span.AddArg("queries", result.queries);
  run_span.AddArg("walks", result.walks);
  run_span.AddArg("dualizations", result.dualizations);
  return result;
}

}  // namespace hgm
