#pragma once

/// \file random_walk.h
/// \brief The randomized Dualize-and-Advance variant of [11]
/// (Gunopulos, Mannila, Saluja, ICDT'97).
///
/// The paper's Algorithm 16 finds one new maximal set per dualization.
/// [11] — the empirical study Algorithm 16 was distilled from — instead
/// interleaves cheap RANDOM WALKS to maximal sets with the expensive
/// dualizations: walk up from ∅ along random interesting extensions until
/// stuck (each walk costs at most rank * width queries), collect several
/// distinct maximal sets per round, and only then dualize to either find
/// an unexplored region (a counterexample transversal to restart walks
/// from) or certify completeness.  Fewer dualizations are needed when
/// |MTh| is large; bench_random_walk quantifies the trade.

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "common/random.h"
#include "core/dualize_advance.h"
#include "core/oracle.h"

namespace hgm {

/// Extends \p start to a maximal interesting set, trying the missing
/// items in uniformly random order (one query per item tried).
/// \p start must be interesting.
Bitset RandomMaximalExtension(InterestingnessOracle* oracle,
                              const Bitset& start, Rng* rng);

/// Options for the randomized algorithm.
struct RandomWalkOptions {
  /// Random walks attempted per round before dualizing.
  size_t walks_per_round = 8;
  /// Stop a round early once this many consecutive walks rediscover
  /// already-known maximal sets.
  size_t stale_walk_limit = 4;
};

/// Result of the randomized run; dualizations counts the transversal-
/// subroutine invocations (the quantity the walks are meant to save).
struct RandomWalkResult {
  std::vector<Bitset> positive_border;
  std::vector<Bitset> negative_border;
  uint64_t queries = 0;
  size_t dualizations = 0;
  size_t walks = 0;
  /// Maximal sets discovered by walks (the rest came from
  /// counterexample extensions).
  size_t found_by_walks = 0;
};

/// Runs the [11]-style randomized MaxTh computation.
RandomWalkResult RunRandomizedDualizeAdvance(
    InterestingnessOracle* oracle, Rng* rng,
    const RandomWalkOptions& options = {});

}  // namespace hgm
