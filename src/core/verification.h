#pragma once

/// \file verification.h
/// \brief The verification problem (Problem 3) and Corollary 4.
///
/// Given a candidate family S, decide whether S = MTh(L, r, q).  Corollary 4
/// states the problem needs at least |Bd(S)| evaluations of q in the worst
/// case and is solvable with exactly that many:
///
///   * every element of Bd+(S) (= max(S)) must be interesting, and
///   * every element of Bd-(S) (computed from S alone, via Theorem 7 and a
///     transversal subroutine — no data access) must be non-interesting.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitset.h"
#include "core/oracle.h"
#include "hypergraph/transversal.h"

namespace hgm {

/// Outcome of a verification run.
struct VerificationResult {
  /// True iff S = MTh(L, r, q).
  bool verified = false;
  /// Evaluations of q used; exactly |Bd+(S)| + |Bd-(S)| when S is an
  /// antichain (fewer if an early mismatch short-circuits, unless
  /// exhaustive checking is requested).
  uint64_t queries = 0;
  /// Size of the border |Bd(S)| = |Bd+(S)| + |Bd-(S)| (the Corollary 4
  /// lower bound for this instance).
  size_t border_size = 0;
  /// The sentences that disproved S, if any: interesting members of
  /// Bd-(S) or non-interesting members of Bd+(S).
  std::vector<Bitset> failures;
};

/// Verifies S = MTh against \p oracle.  \p engine computes the transversals
/// for Theorem 7 (Berge by default if null).  If \p exhaustive is set, all
/// border sentences are checked even after the first failure (making
/// queries exactly |Bd(S)| always).
VerificationResult VerifyMaxTheory(const std::vector<Bitset>& s,
                                   InterestingnessOracle* oracle,
                                   TransversalAlgorithm* engine = nullptr,
                                   bool exhaustive = false);

}  // namespace hgm
