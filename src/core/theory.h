#pragma once

/// \file theory.h
/// \brief Theories, borders, and the transversal connection (Sections 2-3).
///
/// For a set S of sentences (represented as sets over n items, closed
/// downwards or not):
///
///  * Bd+(S) — positive border: the maximal elements of (the downward
///    closure of) S,
///  * Bd-(S) — negative border: the minimal sets outside the downward
///    closure of S,
///  * Theorem 7: Bd-(S) = Tr(H(S)) where H(S) = complements of Bd+(S).
///
/// Brute-force reference implementations (exponential in n) back every
/// optimized algorithm in tests.

#include <vector>

#include "common/bitset.h"
#include "core/oracle.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/transversal.h"

namespace hgm {

/// Positive border of S: maximal elements under inclusion.  S need not be
/// downward closed (the border of S is defined as the border of its
/// downward closure, and maximal elements coincide).
std::vector<Bitset> PositiveBorder(std::vector<Bitset> s);

/// Negative border via Theorem 7: complements of Bd+(S), then minimal
/// transversals.  \p n is the universe size; \p engine computes Tr.
/// For empty S the downward closure is empty, and Bd- = {∅}.
std::vector<Bitset> NegativeBorderViaTransversals(
    const std::vector<Bitset>& s, size_t n, TransversalAlgorithm* engine);

/// Negative border of a *downward-closed* \p s by levelwise candidate
/// generation, no transversal computation: Bd-_1 is the singletons
/// outside s, and Bd-_{k+1} = apriori-gen(s_k) \ s_{k+1} — exactly the
/// candidates Apriori would generate and reject.  A minimal infrequent
/// set of size m >= 2 has all its (m-1)-subsets in s, so the join+prune
/// over s_{m-1} produces it and nothing else; the result is therefore
/// the same family as NegativeBorderViaTransversals (Theorem 7), at the
/// cost of the join instead of a transversal enumeration.  For empty s,
/// Bd- = {∅}.  Returns the border canonically sorted.
std::vector<Bitset> NegativeBorderViaGeneration(const std::vector<Bitset>& s,
                                                size_t n);

/// Brute-force negative border: enumerate all 2^n subsets and keep the
/// minimal ones outside the downward closure of S.  Reference for tests;
/// n <= ~22.
std::vector<Bitset> NegativeBorderBrute(const std::vector<Bitset>& s,
                                        size_t n);

/// Explicit downward closure of S (all subsets of members); exponential.
std::vector<Bitset> DownwardClosure(const std::vector<Bitset>& s, size_t n);

/// Brute-force theory: all interesting sets per the oracle (2^n queries).
/// Reference implementation of Th(L, r, q) for tests; n <= ~22.
std::vector<Bitset> ComputeTheoryBrute(InterestingnessOracle* oracle);

/// Brute-force MTh: maximal interesting sets.
std::vector<Bitset> MaxTheoryBrute(InterestingnessOracle* oracle);

/// rank(C): maximum cardinality over the sets in C (paper Section 5);
/// 0 for empty C.
size_t RankOf(const std::vector<Bitset>& c);

/// Sorts a family canonically (by size then value) for deterministic
/// comparisons and output.
void CanonicalSort(std::vector<Bitset>* sets);

/// Set equality of two families, ignoring order and duplicates.
bool SameFamily(std::vector<Bitset> a, std::vector<Bitset> b);

}  // namespace hgm
