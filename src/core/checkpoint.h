#pragma once

/// \file checkpoint.h
/// \brief Serializable resume points for budgeted / interrupted runs.
///
/// The enumeration-delay view of the transversal-generation literature
/// treats every prefix of a computation as a certified partial answer.
/// A Checkpoint is the machine form of that prefix: the engine-specific
/// state (frontier, accumulated borders, query tally) captured at a safe
/// boundary — a completed level of Algorithm 9, an iteration edge of
/// Algorithm 16, a phase-2 level of the partition miner — from which
/// Resume* continues bit-identically to an uninterrupted run.
///
/// The container is deliberately generic (named uint64 scalars plus named
/// ordered sections of (itemset, value) entries) so one hardened
/// serializer serves every engine and one fuzz target
/// (fuzz/fuzz_checkpoint.cc) covers the whole parsing surface.  The text
/// format is line-oriented:
///
///   hgmine-checkpoint v1
///   kind levelwise
///   width 5
///   scalar queries 12
///   section frontier 2
///   2 0 1 3          <- |items| value item...
///   0 7              <- the empty set with value 7
///   end
///
/// Parsing runs through the common/parse.h caps (line length, id range)
/// plus checkpoint-specific ceilings on sections, entries, and total
/// bitset bytes, so arbitrary bytes are rejected with a Status — never an
/// allocation bomb, never UB.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "common/run_budget.h"
#include "common/status.h"

namespace hgm {

/// One checkpointed set with an attached value (a support count, a
/// per-level tally, ... — meaning is up to the owning section).
struct CheckpointEntry {
  Bitset items;
  uint64_t value = 0;
};

/// Engine-agnostic resume state; see file comment for the text format.
struct Checkpoint {
  /// Which engine wrote this ("levelwise", "dualize_advance", "apriori",
  /// "partition").  Resume functions reject mismatched kinds.
  std::string kind;
  /// Universe size the itemsets are over.
  size_t width = 0;
  /// Named counters, in insertion order.
  std::vector<std::pair<std::string, uint64_t>> scalars;
  /// Named entry lists, in insertion order (order is load-bearing: e.g.
  /// Dualize-and-Advance replays its maximal sets in discovery order).
  std::vector<std::pair<std::string, std::vector<CheckpointEntry>>> sections;

  void SetScalar(const std::string& name, uint64_t value);
  /// False (and *out untouched) when the scalar is absent.
  bool GetScalar(const std::string& name, uint64_t* out) const;

  /// Appends an empty section and returns its entry list.
  std::vector<CheckpointEntry>* AddSection(const std::string& name);
  /// nullptr when absent.
  const std::vector<CheckpointEntry>* FindSection(
      const std::string& name) const;
};

/// Parser ceilings (beyond the shared common/parse.h caps).
inline constexpr size_t kMaxCheckpointSections = 64;
inline constexpr size_t kMaxCheckpointScalars = 4096;
inline constexpr size_t kMaxCheckpointNameLength = 64;
inline constexpr size_t kMaxCheckpointEntries = size_t{1} << 21;
/// Total bits across all parsed entry bitsets (width * entries); bounds
/// the memory a hostile checkpoint can make the parser allocate.
inline constexpr uint64_t kMaxCheckpointTotalBits = uint64_t{1} << 28;

/// Renders \p cp in the v1 text format (always parseable back).
std::string SerializeCheckpoint(const Checkpoint& cp);

/// Parses the v1 text format with full validation; every failure is a
/// Status naming the offending line.
Result<Checkpoint> ParseCheckpoint(std::string_view text);

/// Serialize + write; charges robustness.checkpoints /
/// robustness.checkpoint_bytes.
Status SaveCheckpointFile(const Checkpoint& cp, const std::string& path);

/// Read + parse; charges robustness.resumes on success.
Result<Checkpoint> LoadCheckpointFile(const std::string& path);

// -- Conveniences for the engines' To/From checkpoint conversions. -------

/// Appends a section holding \p sets (values 0).
void AddSetSection(Checkpoint* cp, const std::string& name,
                   const std::vector<Bitset>& sets);

/// Appends a section of empty itemsets carrying \p counts as values
/// (used for per-level tallies).
void AddCountSection(Checkpoint* cp, const std::string& name,
                     const std::vector<size_t>& counts);

/// Extracts a section's itemsets, checking each is over \p width items.
/// Missing sections read as empty (engines treat them as "none").
Status ReadSetSection(const Checkpoint& cp, const std::string& name,
                      size_t width, std::vector<Bitset>* out);

/// Extracts a count section's values.
Status ReadCountSection(const Checkpoint& cp, const std::string& name,
                        std::vector<size_t>* out);

/// \brief A certified partial answer from a budgeted run.
///
/// Invariants (asserted by the audit layer in chaos tests): `theory` is
/// downward closed — it is the union of fully evaluated levels — and
/// `positive_border` / `negative_border` are antichains; the negative
/// border contains only sentences *certified* non-interesting by an
/// actual evaluation.  `checkpoint` resumes the run; resuming yields
/// bit-identical output to a never-interrupted run.
struct PartialTheory {
  StopReason stop_reason = StopReason::kCompleted;
  std::vector<Bitset> theory;
  std::vector<Bitset> positive_border;
  std::vector<Bitset> negative_border;
  uint64_t queries = 0;
  Checkpoint checkpoint;
};

}  // namespace hgm
