#include "core/levelwise.h"

#include <algorithm>
#include <unordered_set>

#include "common/apriori_gen.h"
#include "core/audit.h"
#include "core/theory.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace hgm {

namespace {

/// Publishes the run's Theorem 10 / Corollary 13 quantities as gauges so
/// obs::LevelwiseBoundReportFromRegistry can compute bound ratios without
/// holding the result struct.
void PublishLevelwiseGauges(const LevelwiseResult& result, size_t n) {
  if (!obs::MetricsOn()) return;
  size_t rank = 0;
  for (const Bitset& m : result.positive_border) {
    rank = std::max(rank, m.Count());
  }
  uint64_t interesting = 0;
  for (size_t c : result.interesting_per_level) interesting += c;
  HGM_OBS_GAUGE_SET("levelwise.last_queries", result.queries);
  HGM_OBS_GAUGE_SET("levelwise.last_theory_size", interesting);
  HGM_OBS_GAUGE_SET("levelwise.last_positive_border",
                    result.positive_border.size());
  HGM_OBS_GAUGE_SET("levelwise.last_negative_border",
                    result.negative_border.size());
  HGM_OBS_GAUGE_SET("levelwise.last_rank", rank);
  HGM_OBS_GAUGE_SET("levelwise.last_width", n);
}

/// Mutable algorithm state at a level boundary — everything a checkpoint
/// must capture for the resumed run to be bit-identical.
struct LevelwiseState {
  LevelwiseResult result;               // accumulating (unsorted) output
  std::vector<ItemVec> level;           // interesting sets of size `next_level`
  std::vector<Bitset> maximal_candidates;  // no interesting successor yet
  size_t next_level = 0;                // loop index k to run next
  bool record_theory = true;
};

/// Freezes \p state into a kind="levelwise" checkpoint.
Checkpoint MakeLevelwiseCheckpoint(const LevelwiseState& state, size_t n) {
  Checkpoint cp;
  cp.kind = "levelwise";
  cp.width = n;
  cp.SetScalar("next_level", state.next_level);
  cp.SetScalar("queries", state.result.queries);
  cp.SetScalar("candidates", state.result.candidates);
  cp.SetScalar("levels", state.result.levels);
  cp.SetScalar("record_theory", state.record_theory ? 1 : 0);
  std::vector<Bitset> frontier;
  frontier.reserve(state.level.size());
  for (const ItemVec& s : state.level) {
    frontier.push_back(Bitset::FromIndices(n, s));
  }
  AddSetSection(&cp, "frontier", frontier);
  AddSetSection(&cp, "maximal", state.maximal_candidates);
  AddSetSection(&cp, "negative_border", state.result.negative_border);
  if (state.record_theory) {
    AddSetSection(&cp, "theory", state.result.theory);
  }
  AddCountSection(&cp, "candidates_per_level",
                  state.result.candidates_per_level);
  AddCountSection(&cp, "interesting_per_level",
                  state.result.interesting_per_level);
  return cp;
}

/// Builds the certified partial result for a budget trip at the boundary
/// of level `state.next_level`: the frontier joins the accumulated
/// maximal candidates to form the prefix's positive border.
LevelwiseResult FinishPartial(LevelwiseState&& state, size_t n,
                              StopReason reason) {
  // Freeze the checkpoint before any move empties the state's containers.
  Checkpoint cp = MakeLevelwiseCheckpoint(state, n);
  LevelwiseResult result = std::move(state.result);
  result.stop_reason = reason;
  result.checkpoint = std::move(cp);
  std::vector<Bitset> maximal = std::move(state.maximal_candidates);
  for (const ItemVec& s : state.level) {
    maximal.push_back(Bitset::FromIndices(n, s));
  }
  AntichainMaximize(&maximal);
  CanonicalSort(&maximal);
  result.positive_border = std::move(maximal);
  CanonicalSort(&result.negative_border);
  if (state.record_theory) CanonicalSort(&result.theory);
  if (audit::kEnabled) {
    // The prefix contracts: both borders are antichains (duality only
    // holds for complete theories, so that cross-check is skipped).
    audit::AuditAntichain(result.positive_border, "levelwise partial Bd+");
    audit::AuditAntichain(result.negative_border, "levelwise partial Bd-");
  }
  PublishLevelwiseGauges(result, n);
  return result;
}

/// The level loop plus the finishing passes, shared by fresh and resumed
/// runs.  Consumes \p state.
LevelwiseResult RunLevels(InterestingnessOracle* oracle,
                          const LevelwiseOptions& options,
                          LevelwiseState&& state) {
  const size_t n = oracle->num_items();
  BudgetTracker tracker(options.budget, state.result.queries);

  std::unordered_set<Bitset, BitsetHash> level_set;
  for (size_t k = state.next_level;
       !state.level.empty() && k < options.max_level; ++k) {
    state.next_level = k;
    // Checkpointable boundary: nothing of level k has been recorded yet,
    // so a trip here resumes by re-entering the loop at k exactly.
    StopReason boundary = tracker.CheckBoundary();
    if (boundary != StopReason::kCompleted) {
      return FinishPartial(std::move(state), n, boundary);
    }
    obs::TraceSpan level_span("levelwise.level", "core", {{"level", k + 1}});
    obs::FlightRecorder::Global().Record(
        obs::FlightEventType::kLevel, "levelwise.level",
        static_cast<int64_t>(k + 1),
        static_cast<int64_t>(state.level.size()));
    (void)obs::SampleMemory();
    std::vector<ItemVec> candidates;
    if (k == 0) {
      candidates = SingletonCandidates(n);
    } else {
      level_set.clear();
      for (const auto& s : state.level) {
        level_set.insert(Bitset::FromIndices(n, s));
      }
      candidates = AprioriGen(state.level, level_set, n);
    }

    // Step 4 of Algorithm 9: evaluate the whole level C_l as one batch —
    // the queries are mutually independent, so a parallel oracle may
    // answer them concurrently.  A batch of size m charges exactly m
    // queries, keeping Theorem 10's |Th| + |Bd-| accounting exact.
    std::vector<Bitset> batch;
    batch.reserve(candidates.size());
    uint64_t batch_bytes = 0;
    for (const auto& cand : candidates) {
      batch.push_back(Bitset::FromIndices(n, cand));
      batch_bytes += (n + 7) / 8;
    }
    // Pre-batch budget check: candidate generation touched no data, so a
    // trip here discards the candidates and the resumed run regenerates
    // them bit-identically; no counter has advanced.
    StopReason pre = tracker.CheckBeforeBatch(batch.size(), batch_bytes);
    if (pre != StopReason::kCompleted) {
      return FinishPartial(std::move(state), n, pre);
    }

    LevelwiseResult& result = state.result;
    result.levels = k + 1;
    result.candidates += candidates.size();
    result.candidates_per_level.push_back(candidates.size());
    HGM_OBS_COUNT("levelwise.candidates", candidates.size());
    HGM_OBS_OBSERVE("levelwise.level_candidates", candidates.size());
    result.queries += batch.size();
    tracker.ChargeQueries(batch.size());
    HGM_OBS_COUNT("levelwise.queries", batch.size());
    std::vector<uint8_t> verdicts = oracle->EvaluateBatch(batch);

    std::vector<ItemVec> next;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (verdicts[c]) {
        if (state.record_theory) result.theory.push_back(batch[c]);
        next.push_back(std::move(candidates[c]));
      } else {
        result.negative_border.push_back(std::move(batch[c]));
      }
    }
    result.interesting_per_level.push_back(next.size());
    HGM_OBS_COUNT("levelwise.interesting", next.size());
    level_span.AddArg("candidates", candidates.size());
    level_span.AddArg("interesting", next.size());
    level_span.AddArg("border_growth", result.negative_border.size());

    // An interesting k-set is maximal iff it has no interesting
    // (k+1)-superset; apriori-gen completeness guarantees every interesting
    // (k+1)-set appears in `next`, so diffing against it is exact.
    std::vector<Bitset> next_sets;
    next_sets.reserve(next.size());
    for (const auto& s : next) {
      next_sets.push_back(Bitset::FromIndices(n, s));
    }
    if (audit::kEnabled) {
      // Frontier contract behind Theorem 10: every interesting (k+1)-set
      // extends only interesting k-sets (the theory is downward closed).
      std::vector<Bitset> level_sets;
      level_sets.reserve(state.level.size());
      for (const auto& s : state.level) {
        level_sets.push_back(Bitset::FromIndices(n, s));
      }
      audit::AuditFrontierClosure(level_sets, next_sets, "levelwise");
    }
    for (const auto& s : state.level) {
      Bitset x = Bitset::FromIndices(n, s);
      bool extended = false;
      for (const auto& sup : next_sets) {
        if (x.IsSubsetOf(sup)) {
          extended = true;
          break;
        }
      }
      if (!extended) state.maximal_candidates.push_back(std::move(x));
    }
    state.level = std::move(next);
  }

  LevelwiseResult result = std::move(state.result);
  // Whatever remains in `level` when the loop exits on the max_level cap is
  // maximal within the truncated lattice.
  const bool truncated = !state.level.empty();
  std::vector<Bitset> maximal = std::move(state.maximal_candidates);
  for (const auto& s : state.level) {
    maximal.push_back(Bitset::FromIndices(n, s));
  }

  // The per-level diff already guarantees maximality for untruncated runs,
  // but a final antichain pass keeps the contract unconditional.
  AntichainMaximize(&maximal);
  CanonicalSort(&maximal);
  result.positive_border = std::move(maximal);

  CanonicalSort(&result.negative_border);
  if (state.record_theory) CanonicalSort(&result.theory);

  if (audit::kEnabled) {
    audit::AuditAntichain(result.positive_border, "levelwise Bd+");
    audit::AuditAntichain(result.negative_border, "levelwise Bd-");
    // Theorem 7 only relates the borders of the *full* theory; a max_level
    // cap truncates both, so the cross-check applies to complete runs.
    if (!truncated) {
      audit::AuditBorderDuality(result.positive_border,
                                result.negative_border, n, "levelwise");
    }
  }
  PublishLevelwiseGauges(result, n);
  return result;
}

}  // namespace

LevelwiseResult RunLevelwise(InterestingnessOracle* oracle,
                             const LevelwiseOptions& options) {
  const size_t n = oracle->num_items();
  HGM_OBS_COUNT("levelwise.runs", 1);
  obs::TraceSpan run_span("levelwise.run", "core", {{"width", n}});

  LevelwiseState state;
  state.record_theory = options.record_theory;
  LevelwiseResult& result = state.result;

  // Level 0: the unique most general sentence, ∅.  This single probe
  // precedes budget enforcement (which lives at level boundaries), so
  // even a cancelled run returns a nonempty certified prefix.
  ++result.candidates;
  ++result.queries;
  result.candidates_per_level.push_back(1);
  HGM_OBS_COUNT("levelwise.candidates", 1);
  HGM_OBS_COUNT("levelwise.queries", 1);
  if (!oracle->IsInteresting(Bitset(n))) {
    // Nothing is interesting; Th = ∅ and Bd- = {∅}.
    result.negative_border.push_back(Bitset(n));
    result.interesting_per_level.push_back(0);
    if (audit::kEnabled) {
      audit::AuditBorderDuality(result.positive_border,
                                result.negative_border, n, "levelwise");
    }
    PublishLevelwiseGauges(result, n);
    run_span.AddArg("queries", result.queries);
    return result;
  }
  HGM_OBS_COUNT("levelwise.interesting", 1);
  result.interesting_per_level.push_back(1);
  if (options.record_theory) result.theory.push_back(Bitset(n));
  state.level.push_back(ItemVec{});

  LevelwiseResult out = RunLevels(oracle, options, std::move(state));
  run_span.AddArg("queries", out.queries);
  run_span.AddArg("levels", out.levels);
  return out;
}

Result<LevelwiseResult> ResumeLevelwise(InterestingnessOracle* oracle,
                                        const Checkpoint& checkpoint,
                                        const LevelwiseOptions& options) {
  const size_t n = oracle->num_items();
  if (checkpoint.kind != "levelwise") {
    return Status::InvalidArgument("checkpoint kind '" + checkpoint.kind +
                                   "' is not 'levelwise'");
  }
  if (checkpoint.width != n) {
    return Status::InvalidArgument(
        "checkpoint width " + std::to_string(checkpoint.width) +
        " does not match the oracle's " + std::to_string(n) + " items");
  }
  HGM_OBS_COUNT("levelwise.runs", 1);
  obs::TraceSpan run_span("levelwise.resume", "core", {{"width", n}});

  LevelwiseState state;
  uint64_t v = 0;
  if (!checkpoint.GetScalar("next_level", &v)) {
    return Status::InvalidArgument("levelwise checkpoint missing next_level");
  }
  state.next_level = static_cast<size_t>(v);
  if (checkpoint.GetScalar("queries", &v)) state.result.queries = v;
  if (checkpoint.GetScalar("candidates", &v)) state.result.candidates = v;
  if (checkpoint.GetScalar("levels", &v)) {
    state.result.levels = static_cast<size_t>(v);
  }
  state.record_theory =
      checkpoint.GetScalar("record_theory", &v) ? v != 0 : true;

  std::vector<Bitset> frontier;
  Status s = ReadSetSection(checkpoint, "frontier", n, &frontier);
  if (!s.ok()) return s;
  state.level.reserve(frontier.size());
  for (const Bitset& f : frontier) {
    ItemVec items;
    for (size_t i : f.Indices()) items.push_back(static_cast<uint32_t>(i));
    state.level.push_back(std::move(items));
  }
  // The frontier must be one uniform level below the resume point.
  for (const ItemVec& f : state.level) {
    if (f.size() != state.next_level) {
      return Status::InvalidArgument(
          "levelwise checkpoint frontier set of size " +
          std::to_string(f.size()) + " at level " +
          std::to_string(state.next_level));
    }
  }
  s = ReadSetSection(checkpoint, "maximal", n, &state.maximal_candidates);
  if (!s.ok()) return s;
  s = ReadSetSection(checkpoint, "negative_border", n,
                     &state.result.negative_border);
  if (!s.ok()) return s;
  if (state.record_theory) {
    s = ReadSetSection(checkpoint, "theory", n, &state.result.theory);
    if (!s.ok()) return s;
  }
  s = ReadCountSection(checkpoint, "candidates_per_level",
                       &state.result.candidates_per_level);
  if (!s.ok()) return s;
  s = ReadCountSection(checkpoint, "interesting_per_level",
                       &state.result.interesting_per_level);
  if (!s.ok()) return s;

  LevelwiseResult out = RunLevels(oracle, options, std::move(state));
  run_span.AddArg("queries", out.queries);
  run_span.AddArg("levels", out.levels);
  return out;
}

PartialTheory AsPartialTheory(const LevelwiseResult& result) {
  PartialTheory partial;
  partial.stop_reason = result.stop_reason;
  partial.theory = result.theory;
  partial.positive_border = result.positive_border;
  partial.negative_border = result.negative_border;
  partial.queries = result.queries;
  if (result.checkpoint) partial.checkpoint = *result.checkpoint;
  return partial;
}

}  // namespace hgm
