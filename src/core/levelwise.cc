#include "core/levelwise.h"

#include <algorithm>
#include <unordered_set>

#include "common/apriori_gen.h"
#include "core/audit.h"
#include "core/theory.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hgm {

namespace {

/// Publishes the run's Theorem 10 / Corollary 13 quantities as gauges so
/// obs::LevelwiseBoundReportFromRegistry can compute bound ratios without
/// holding the result struct.
void PublishLevelwiseGauges(const LevelwiseResult& result, size_t n) {
  if (!obs::MetricsOn()) return;
  size_t rank = 0;
  for (const Bitset& m : result.positive_border) {
    rank = std::max(rank, m.Count());
  }
  uint64_t interesting = 0;
  for (size_t c : result.interesting_per_level) interesting += c;
  HGM_OBS_GAUGE_SET("levelwise.last_queries", result.queries);
  HGM_OBS_GAUGE_SET("levelwise.last_theory_size", interesting);
  HGM_OBS_GAUGE_SET("levelwise.last_positive_border",
                    result.positive_border.size());
  HGM_OBS_GAUGE_SET("levelwise.last_negative_border",
                    result.negative_border.size());
  HGM_OBS_GAUGE_SET("levelwise.last_rank", rank);
  HGM_OBS_GAUGE_SET("levelwise.last_width", n);
}

}  // namespace

LevelwiseResult RunLevelwise(InterestingnessOracle* oracle,
                             const LevelwiseOptions& options) {
  LevelwiseResult result;
  const size_t n = oracle->num_items();
  HGM_OBS_COUNT("levelwise.runs", 1);
  obs::TraceSpan run_span("levelwise.run", "core", {{"width", n}});

  auto ask = [&](const Bitset& x) {
    ++result.queries;
    return oracle->IsInteresting(x);
  };

  // Level 0: the unique most general sentence, ∅.
  ++result.candidates;
  result.candidates_per_level.push_back(1);
  HGM_OBS_COUNT("levelwise.candidates", 1);
  HGM_OBS_COUNT("levelwise.queries", 1);
  if (!ask(Bitset(n))) {
    // Nothing is interesting; Th = ∅ and Bd- = {∅}.
    result.negative_border.push_back(Bitset(n));
    result.interesting_per_level.push_back(0);
    if (audit::kEnabled) {
      audit::AuditBorderDuality(result.positive_border,
                                result.negative_border, n, "levelwise");
    }
    PublishLevelwiseGauges(result, n);
    run_span.AddArg("queries", result.queries);
    return result;
  }
  HGM_OBS_COUNT("levelwise.interesting", 1);
  result.interesting_per_level.push_back(1);
  if (options.record_theory) result.theory.push_back(Bitset(n));

  std::vector<ItemVec> level;  // interesting sets of the current size
  level.push_back(ItemVec{});
  std::unordered_set<Bitset, BitsetHash> level_set;
  std::vector<Bitset> maximal_candidates;  // interesting sets that spawned
                                           // no interesting successor

  for (size_t k = 0; !level.empty() && k < options.max_level; ++k) {
    result.levels = k + 1;
    obs::TraceSpan level_span("levelwise.level", "core", {{"level", k + 1}});
    std::vector<ItemVec> candidates;
    if (k == 0) {
      candidates = SingletonCandidates(n);
    } else {
      level_set.clear();
      for (const auto& s : level) {
        level_set.insert(Bitset::FromIndices(n, s));
      }
      candidates = AprioriGen(level, level_set, n);
    }
    result.candidates += candidates.size();
    result.candidates_per_level.push_back(candidates.size());
    HGM_OBS_COUNT("levelwise.candidates", candidates.size());
    HGM_OBS_OBSERVE("levelwise.level_candidates", candidates.size());

    // Step 4 of Algorithm 9: evaluate the whole level C_l as one batch —
    // the queries are mutually independent, so a parallel oracle may
    // answer them concurrently.  A batch of size m charges exactly m
    // queries, keeping Theorem 10's |Th| + |Bd-| accounting exact.
    std::vector<Bitset> batch;
    batch.reserve(candidates.size());
    for (const auto& cand : candidates) {
      batch.push_back(Bitset::FromIndices(n, cand));
    }
    result.queries += batch.size();
    HGM_OBS_COUNT("levelwise.queries", batch.size());
    std::vector<uint8_t> verdicts = oracle->EvaluateBatch(batch);

    std::vector<ItemVec> next;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (verdicts[c]) {
        if (options.record_theory) result.theory.push_back(batch[c]);
        next.push_back(std::move(candidates[c]));
      } else {
        result.negative_border.push_back(std::move(batch[c]));
      }
    }
    result.interesting_per_level.push_back(next.size());
    HGM_OBS_COUNT("levelwise.interesting", next.size());
    level_span.AddArg("candidates", candidates.size());
    level_span.AddArg("interesting", next.size());
    level_span.AddArg("border_growth", result.negative_border.size());

    // An interesting k-set is maximal iff it has no interesting
    // (k+1)-superset; apriori-gen completeness guarantees every interesting
    // (k+1)-set appears in `next`, so diffing against it is exact.
    std::vector<Bitset> next_sets;
    next_sets.reserve(next.size());
    for (const auto& s : next) {
      next_sets.push_back(Bitset::FromIndices(n, s));
    }
    if (audit::kEnabled) {
      // Frontier contract behind Theorem 10: every interesting (k+1)-set
      // extends only interesting k-sets (the theory is downward closed).
      std::vector<Bitset> level_sets;
      level_sets.reserve(level.size());
      for (const auto& s : level) {
        level_sets.push_back(Bitset::FromIndices(n, s));
      }
      audit::AuditFrontierClosure(level_sets, next_sets, "levelwise");
    }
    for (const auto& s : level) {
      Bitset x = Bitset::FromIndices(n, s);
      bool extended = false;
      for (const auto& sup : next_sets) {
        if (x.IsSubsetOf(sup)) {
          extended = true;
          break;
        }
      }
      if (!extended) maximal_candidates.push_back(std::move(x));
    }
    level = std::move(next);
  }
  // Whatever remains in `level` when the loop exits on the max_level cap is
  // maximal within the truncated lattice.
  const bool truncated = !level.empty();
  for (const auto& s : level) {
    maximal_candidates.push_back(Bitset::FromIndices(n, s));
  }

  // The per-level diff already guarantees maximality for untruncated runs,
  // but a final antichain pass keeps the contract unconditional.
  AntichainMaximize(&maximal_candidates);
  CanonicalSort(&maximal_candidates);
  result.positive_border = std::move(maximal_candidates);

  CanonicalSort(&result.negative_border);
  if (options.record_theory) CanonicalSort(&result.theory);

  if (audit::kEnabled) {
    audit::AuditAntichain(result.positive_border, "levelwise Bd+");
    audit::AuditAntichain(result.negative_border, "levelwise Bd-");
    // Theorem 7 only relates the borders of the *full* theory; a max_level
    // cap truncates both, so the cross-check applies to complete runs.
    if (!truncated) {
      audit::AuditBorderDuality(result.positive_border,
                                result.negative_border, n, "levelwise");
    }
  }
  PublishLevelwiseGauges(result, n);
  run_span.AddArg("queries", result.queries);
  run_span.AddArg("levels", result.levels);
  return result;
}

}  // namespace hgm
