#pragma once

/// \file audit.h
/// \brief Paper-contract auditors: every theorem as a runtime check.
///
/// The paper's guarantees are checkable invariants, and this module turns
/// them into auditors that the hot paths invoke when the build is
/// configured with -DHGMINE_AUDIT=ON (which defines HGMINE_AUDIT and flips
/// audit::kEnabled to true):
///
///  * borders are antichains (Section 2's Bd+/Bd- definitions),
///  * every levelwise frontier is downward closed w.r.t. the previous one
///    (the apriori-gen completeness contract behind Theorem 10),
///  * Bd-(S) = Tr(H(S)) — Theorem 7 — cross-checked with an independent
///    Berge dualization after Dualize-and-Advance and levelwise runs,
///  * every transversal any engine emits is a *minimal* transversal
///    (Lemma 18; see hypergraph/transversal_audit.h, re-exported here),
///  * oracle answers are monotone downward (the Section 2 precondition of
///    every algorithm in core/).
///
/// Auditors are always compiled (bit-rot in a check is a build error) and
/// callable from tests in any configuration; only the hot-path call sites
/// are gated on audit::kEnabled.  Each auditor tallies into the global
/// AuditStats (common/audit_stats.h) so tests and the audited ctest run
/// can assert "N contracts checked, 0 violated".  A violation invokes the
/// installed failure handler — fatal by default, capturable in tests.
///
/// Auditors never query an oracle: they only inspect already-materialized
/// families, so Theorem 10 / Theorem 21 query accounting is identical in
/// audited and plain builds.

#include <span>
#include <vector>

#include "common/audit_stats.h"
#include "common/bitset.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/transversal_audit.h"

namespace hgm {
namespace audit {

/// Checks that \p family is an antichain: no member contained in another.
/// Charges one antichain check per member.
bool AuditAntichain(std::span<const Bitset> family, const char* where);

/// Checks that every member of \p upper has all its one-smaller subsets in
/// \p lower — the frontier contract of Algorithm 9: interesting (k+1)-sets
/// only ever extend interesting k-sets.  Charges one closure check per
/// member of \p upper.
bool AuditFrontierClosure(std::span<const Bitset> lower,
                          std::span<const Bitset> upper, const char* where);

/// Theorem 7 cross-check: \p negative must equal Tr(H(\p positive)) where
/// H(S) has one edge per member of Bd+(S), the complement.  Recomputes the
/// transversals independently with Berge.  Charges one duality check.
bool AuditBorderDuality(const std::vector<Bitset>& positive,
                        const std::vector<Bitset>& negative, size_t num_items,
                        const char* where);

/// Monotonicity spot check: with x ⊆ y, an interesting y forces an
/// interesting x (the quality predicate is monotone downward).  If neither
/// containment holds the pair is vacuously consistent.  Charges one
/// monotonicity check.
bool AuditMonotonePair(const Bitset& x, bool x_interesting, const Bitset& y,
                       bool y_interesting, const char* where);

}  // namespace audit
}  // namespace hgm
