#include "core/dualize_advance.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "core/audit.h"
#include "core/theory.h"
#include "hypergraph/transversal_berge.h"
#include "hypergraph/transversal_fk.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hgm {

namespace {

/// Publishes the run's Theorem 21 / Lemma 20 quantities as gauges so
/// obs::DualizeAdvanceBoundReportFromRegistry can compute bound ratios.
void PublishDualizeAdvanceGauges(const DualizeAdvanceResult& result,
                                 size_t n) {
  if (!obs::MetricsOn()) return;
  size_t rank = 0;
  for (const Bitset& m : result.positive_border) {
    rank = std::max(rank, m.Count());
  }
  HGM_OBS_GAUGE_SET("da.last_queries", result.queries);
  HGM_OBS_GAUGE_SET("da.last_positive_border", result.positive_border.size());
  HGM_OBS_GAUGE_SET("da.last_negative_border", result.negative_border.size());
  HGM_OBS_GAUGE_SET("da.last_rank", rank);
  HGM_OBS_GAUGE_SET("da.last_width", n);
  HGM_OBS_GAUGE_SET("da.last_iterations", result.iterations);
  HGM_OBS_GAUGE_SET("da.last_max_enumerated",
                    result.max_enumerated_one_iteration);
}

/// Mutable algorithm state at an iteration boundary.
struct DaState {
  DualizeAdvanceResult result;   // accumulating counters
  std::vector<Bitset> maximal;   // C_i in discovery order (order drives the
                                 // complements hypergraph, so it is part of
                                 // the bit-identical-resume contract)
  /// Minimal non-interesting sets certified by completed iterations.  Any
  /// transversal of Bd-(C_i)'s complement hypergraph that tests
  /// non-interesting is genuinely minimal non-interesting: its proper
  /// subsets all sit inside some member of C_i.  Only maintained when the
  /// budget can trip (it exists solely to certify partial answers).
  std::vector<Bitset> certified_negative;
  std::unordered_set<Bitset, BitsetHash> certified_seen;
};

/// Freezes \p state into a kind="dualize_advance" checkpoint.
Checkpoint MakeDaCheckpoint(const DaState& state, size_t n) {
  Checkpoint cp;
  cp.kind = "dualize_advance";
  cp.width = n;
  cp.SetScalar("queries", state.result.queries);
  cp.SetScalar("transversals_enumerated",
               state.result.transversals_enumerated);
  cp.SetScalar("iterations", state.result.iterations);
  cp.SetScalar("max_enumerated", state.result.max_enumerated_one_iteration);
  AddSetSection(&cp, "maximal", state.maximal);
  AddSetSection(&cp, "certified_negative", state.certified_negative);
  AddCountSection(&cp, "intermediate_border_sizes",
                  state.result.intermediate_border_sizes);
  return cp;
}

/// Certified partial answer for a trip at an iteration boundary: the
/// maximal sets found so far plus the accumulated certified negatives.
/// Both are antichains by construction (maximality resp. minimality), so
/// no antichain pass is needed — the audit asserts it anyway.
DualizeAdvanceResult FinishPartial(DaState&& state, size_t n,
                                   StopReason reason) {
  // Freeze the checkpoint before any move empties the state's containers.
  Checkpoint cp = MakeDaCheckpoint(state, n);
  DualizeAdvanceResult result = std::move(state.result);
  result.stop_reason = reason;
  result.checkpoint = std::move(cp);
  result.positive_border = state.maximal;
  CanonicalSort(&result.positive_border);
  result.negative_border = std::move(state.certified_negative);
  CanonicalSort(&result.negative_border);
  if (audit::kEnabled) {
    audit::AuditAntichain(result.positive_border,
                          "dualize-advance partial Bd+");
    audit::AuditAntichain(result.negative_border,
                          "dualize-advance partial Bd-");
  }
  PublishDualizeAdvanceGauges(result, n);
  return result;
}

/// The outer loop of Algorithm 16 plus the finishing passes, shared by
/// fresh and resumed runs.  Consumes \p state.
DualizeAdvanceResult RunIterations(InterestingnessOracle* oracle,
                                   const DualizeAdvanceOptions& options,
                                   DaState&& state) {
  const size_t n = oracle->num_items();
  DualizeAdvanceResult& result = state.result;
  BudgetTracker tracker(options.budget, result.queries);
  const bool track_partials = options.budget.CanTrip();

  auto make_enumerator = options.make_enumerator
                             ? options.make_enumerator
                             : []() -> std::unique_ptr<TransversalEnumerator> {
                                 return std::make_unique<
                                     FkTransversalEnumerator>();
                               };

  auto ask = [&](const Bitset& x) {
    ++result.queries;
    tracker.ChargeQueries(1);
    return oracle->IsInteresting(x);
  };

  // Greedy extension (Step 9): add one attribute at a time while the set
  // stays interesting; at most width(L) = n queries per rank level.  Runs
  // unchecked — a discovered counterexample is always fully extended, so
  // the checkpoint never holds a half-maximal set (bounded overshoot of
  // at most n queries past the cap).
  auto extend_to_maximal = [&](Bitset x) {
    for (size_t v = 0; v < n; ++v) {
      if (x.Test(v)) continue;
      Bitset candidate = x.WithBit(v);
      if (ask(candidate)) x = std::move(candidate);
    }
    return x;
  };

  std::vector<Bitset>& maximal = state.maximal;  // C_i
  while (true) {
    // Checkpointable boundary.  The lookahead of one query is the
    // iteration's minimum spend whenever the complement hypergraph has a
    // transversal at all; blocking a zero-query certifying pass here is a
    // conservative trip the resume completes.
    StopReason boundary = tracker.CheckBeforeBatch(1, 0);
    if (boundary != StopReason::kCompleted) {
      return FinishPartial(std::move(state), n, boundary);
    }
    // Snapshot for mid-iteration trips: an aborted iteration must leave
    // no trace, so the resumed run replays it bit-identically.
    const uint64_t queries0 = result.queries;
    const uint64_t transversals0 = result.transversals_enumerated;
    const size_t borders0 = result.intermediate_border_sizes.size();

    ++result.iterations;
    obs::TraceSpan iter_span("da.iteration", "core",
                             {{"iteration", result.iterations},
                              {"maximal_so_far", maximal.size()}});
    obs::FlightRecorder::Global().Record(
        obs::FlightEventType::kLevel, "da.iteration",
        static_cast<int64_t>(result.iterations),
        static_cast<int64_t>(maximal.size()));
    // Step 3: complements of C_i; Tr of that hypergraph is Bd-(C_i).
    Hypergraph complements(n);
    for (const auto& m : maximal) complements.AddEdge(~m);

    if (options.measure_intermediate_borders) {
      BergeTransversals berge;
      result.intermediate_border_sizes.push_back(
          berge.Compute(complements).num_edges());
    }

    auto enumerator = make_enumerator();
    // A cancel mid-enumeration surfaces as CancelledError from deep inside
    // the engine; the boundary checks above remain the graceful
    // partial-result path, this is the backstop for enumerations whose
    // single Next() call is itself long-running.
    enumerator->SetCancellation(options.budget.cancel);
    enumerator->Reset(complements);

    // Lemma 18 contract: whatever the enumerator hands out must be a
    // minimal transversal of min(complements).
    Hypergraph audited_complements(0);
    if (audit::kEnabled) {
      audited_complements = complements;
      audited_complements.Minimize();
    }

    std::vector<Bitset> non_interesting;
    Bitset x(n);
    bool advanced = false;
    size_t enumerated_this_iteration = 0;
    while (enumerator->Next(&x)) {
      StopReason mid = tracker.CheckBeforeBatch(1, 0);
      if (mid != StopReason::kCompleted) {
        // Roll the aborted iteration back to the boundary snapshot.
        result.queries = queries0;
        result.transversals_enumerated = transversals0;
        result.intermediate_border_sizes.resize(borders0);
        --result.iterations;
        return FinishPartial(std::move(state), n, mid);
      }
      ++result.transversals_enumerated;
      ++enumerated_this_iteration;
      if (audit::kEnabled) {
        audit::AuditMinimalTransversal(audited_complements, x,
                                       "dualize-advance enumerator");
      }
      if (ask(x)) {
        // Counterexample (Step 6): extend to a new maximal set.
        maximal.push_back(extend_to_maximal(std::move(x)));
        advanced = true;
        break;
      }
      non_interesting.push_back(x);
    }
    result.max_enumerated_one_iteration =
        std::max(result.max_enumerated_one_iteration,
                 enumerated_this_iteration);
    HGM_OBS_COUNT("da.iterations", 1);
    HGM_OBS_COUNT("da.transversals_enumerated", enumerated_this_iteration);
    HGM_OBS_OBSERVE("da.iteration_transversals", enumerated_this_iteration);
    iter_span.AddArg("transversals", enumerated_this_iteration);
    iter_span.AddArg("advanced", advanced ? 1 : 0);
    if (track_partials) {
      for (const Bitset& s : non_interesting) {
        if (state.certified_seen.insert(s).second) {
          state.certified_negative.push_back(s);
        }
      }
    }
    if (!advanced) {
      // Step 8: every minimal transversal is non-interesting, so
      // C_i = MTh and the enumerated transversals are exactly Bd-(MTh).
      result.negative_border = std::move(non_interesting);
      break;
    }
  }

  CanonicalSort(&maximal);
  DualizeAdvanceResult out = std::move(result);
  out.positive_border = std::move(maximal);
  CanonicalSort(&out.negative_border);

  if (audit::kEnabled) {
    audit::AuditAntichain(out.positive_border, "dualize-advance Bd+");
    // Theorem 7 on the final iteration: the certifying transversal set is
    // exactly Bd-(MTh), cross-checked with an independent Berge run.
    audit::AuditBorderDuality(out.positive_border, out.negative_border, n,
                              "dualize-advance");
  }
  HGM_OBS_COUNT("da.queries", out.queries);
  PublishDualizeAdvanceGauges(out, n);
  return out;
}

}  // namespace

DualizeAdvanceResult RunDualizeAdvance(InterestingnessOracle* oracle,
                                       const DualizeAdvanceOptions& options) {
  const size_t n = oracle->num_items();
  HGM_OBS_COUNT("da.runs", 1);
  obs::TraceSpan run_span("da.run", "core", {{"width", n}});
  DaState state;
  DualizeAdvanceResult out = RunIterations(oracle, options, std::move(state));
  run_span.AddArg("queries", out.queries);
  run_span.AddArg("iterations", out.iterations);
  return out;
}

Result<DualizeAdvanceResult> ResumeDualizeAdvance(
    InterestingnessOracle* oracle, const Checkpoint& checkpoint,
    const DualizeAdvanceOptions& options) {
  const size_t n = oracle->num_items();
  if (checkpoint.kind != "dualize_advance") {
    return Status::InvalidArgument("checkpoint kind '" + checkpoint.kind +
                                   "' is not 'dualize_advance'");
  }
  if (checkpoint.width != n) {
    return Status::InvalidArgument(
        "checkpoint width " + std::to_string(checkpoint.width) +
        " does not match the oracle's " + std::to_string(n) + " items");
  }
  HGM_OBS_COUNT("da.runs", 1);
  obs::TraceSpan run_span("da.resume", "core", {{"width", n}});

  DaState state;
  uint64_t v = 0;
  if (checkpoint.GetScalar("queries", &v)) state.result.queries = v;
  if (checkpoint.GetScalar("transversals_enumerated", &v)) {
    state.result.transversals_enumerated = v;
  }
  if (checkpoint.GetScalar("iterations", &v)) {
    state.result.iterations = static_cast<size_t>(v);
  }
  if (checkpoint.GetScalar("max_enumerated", &v)) {
    state.result.max_enumerated_one_iteration = static_cast<size_t>(v);
  }
  Status s = ReadSetSection(checkpoint, "maximal", n, &state.maximal);
  if (!s.ok()) return s;
  s = ReadSetSection(checkpoint, "certified_negative", n,
                     &state.certified_negative);
  if (!s.ok()) return s;
  for (const Bitset& b : state.certified_negative) {
    state.certified_seen.insert(b);
  }
  s = ReadCountSection(checkpoint, "intermediate_border_sizes",
                       &state.result.intermediate_border_sizes);
  if (!s.ok()) return s;

  DualizeAdvanceResult out = RunIterations(oracle, options, std::move(state));
  run_span.AddArg("queries", out.queries);
  run_span.AddArg("iterations", out.iterations);
  return out;
}

PartialTheory AsPartialTheory(const DualizeAdvanceResult& result) {
  PartialTheory partial;
  partial.stop_reason = result.stop_reason;
  partial.positive_border = result.positive_border;
  partial.negative_border = result.negative_border;
  partial.queries = result.queries;
  if (result.checkpoint) partial.checkpoint = *result.checkpoint;
  return partial;
}

}  // namespace hgm
