#include "core/dualize_advance.h"

#include <algorithm>

#include "core/audit.h"
#include "core/theory.h"
#include "hypergraph/transversal_berge.h"
#include "hypergraph/transversal_fk.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hgm {

namespace {

/// Publishes the run's Theorem 21 / Lemma 20 quantities as gauges so
/// obs::DualizeAdvanceBoundReportFromRegistry can compute bound ratios.
void PublishDualizeAdvanceGauges(const DualizeAdvanceResult& result,
                                 size_t n) {
  if (!obs::MetricsOn()) return;
  size_t rank = 0;
  for (const Bitset& m : result.positive_border) {
    rank = std::max(rank, m.Count());
  }
  HGM_OBS_GAUGE_SET("da.last_queries", result.queries);
  HGM_OBS_GAUGE_SET("da.last_positive_border", result.positive_border.size());
  HGM_OBS_GAUGE_SET("da.last_negative_border", result.negative_border.size());
  HGM_OBS_GAUGE_SET("da.last_rank", rank);
  HGM_OBS_GAUGE_SET("da.last_width", n);
  HGM_OBS_GAUGE_SET("da.last_iterations", result.iterations);
  HGM_OBS_GAUGE_SET("da.last_max_enumerated",
                    result.max_enumerated_one_iteration);
}

}  // namespace

DualizeAdvanceResult RunDualizeAdvance(InterestingnessOracle* oracle,
                                       const DualizeAdvanceOptions& options) {
  DualizeAdvanceResult result;
  const size_t n = oracle->num_items();
  HGM_OBS_COUNT("da.runs", 1);
  obs::TraceSpan run_span("da.run", "core", {{"width", n}});

  auto make_enumerator = options.make_enumerator
                             ? options.make_enumerator
                             : []() -> std::unique_ptr<TransversalEnumerator> {
                                 return std::make_unique<
                                     FkTransversalEnumerator>();
                               };

  auto ask = [&](const Bitset& x) {
    ++result.queries;
    return oracle->IsInteresting(x);
  };

  // Greedy extension (Step 9): add one attribute at a time while the set
  // stays interesting; at most width(L) = n queries per rank level.
  auto extend_to_maximal = [&](Bitset x) {
    for (size_t v = 0; v < n; ++v) {
      if (x.Test(v)) continue;
      Bitset candidate = x.WithBit(v);
      if (ask(candidate)) x = std::move(candidate);
    }
    return x;
  };

  std::vector<Bitset> maximal;  // C_i
  while (true) {
    ++result.iterations;
    obs::TraceSpan iter_span("da.iteration", "core",
                             {{"iteration", result.iterations},
                              {"maximal_so_far", maximal.size()}});
    // Step 3: complements of C_i; Tr of that hypergraph is Bd-(C_i).
    Hypergraph complements(n);
    for (const auto& m : maximal) complements.AddEdge(~m);

    if (options.measure_intermediate_borders) {
      BergeTransversals berge;
      result.intermediate_border_sizes.push_back(
          berge.Compute(complements).num_edges());
    }

    auto enumerator = make_enumerator();
    enumerator->Reset(complements);

    // Lemma 18 contract: whatever the enumerator hands out must be a
    // minimal transversal of min(complements).
    Hypergraph audited_complements(0);
    if (audit::kEnabled) {
      audited_complements = complements;
      audited_complements.Minimize();
    }

    std::vector<Bitset> non_interesting;
    Bitset x(n);
    bool advanced = false;
    size_t enumerated_this_iteration = 0;
    while (enumerator->Next(&x)) {
      ++result.transversals_enumerated;
      ++enumerated_this_iteration;
      if (audit::kEnabled) {
        audit::AuditMinimalTransversal(audited_complements, x,
                                       "dualize-advance enumerator");
      }
      if (ask(x)) {
        // Counterexample (Step 6): extend to a new maximal set.
        maximal.push_back(extend_to_maximal(std::move(x)));
        advanced = true;
        break;
      }
      non_interesting.push_back(x);
    }
    result.max_enumerated_one_iteration =
        std::max(result.max_enumerated_one_iteration,
                 enumerated_this_iteration);
    HGM_OBS_COUNT("da.iterations", 1);
    HGM_OBS_COUNT("da.transversals_enumerated", enumerated_this_iteration);
    HGM_OBS_OBSERVE("da.iteration_transversals", enumerated_this_iteration);
    iter_span.AddArg("transversals", enumerated_this_iteration);
    iter_span.AddArg("advanced", advanced ? 1 : 0);
    if (!advanced) {
      // Step 8: every minimal transversal is non-interesting, so
      // C_i = MTh and the enumerated transversals are exactly Bd-(MTh).
      result.negative_border = std::move(non_interesting);
      break;
    }
  }

  CanonicalSort(&maximal);
  result.positive_border = std::move(maximal);
  CanonicalSort(&result.negative_border);

  if (audit::kEnabled) {
    audit::AuditAntichain(result.positive_border, "dualize-advance Bd+");
    // Theorem 7 on the final iteration: the certifying transversal set is
    // exactly Bd-(MTh), cross-checked with an independent Berge run.
    audit::AuditBorderDuality(result.positive_border,
                              result.negative_border, n, "dualize-advance");
  }
  HGM_OBS_COUNT("da.queries", result.queries);
  PublishDualizeAdvanceGauges(result, n);
  run_span.AddArg("queries", result.queries);
  run_span.AddArg("iterations", result.iterations);
  return result;
}

}  // namespace hgm
