#pragma once

/// \file oracle.h
/// \brief The Is-interesting query model of Section 3.
///
/// The paper's model of computation charges only for questions of the form
/// "does q(r, phi) hold?".  Every mining / learning algorithm in this
/// library accesses its data exclusively through an InterestingnessOracle,
/// and CountingOracle implements the cost accounting used by Theorem 2,
/// Corollary 4, Theorem 10, Theorem 21 and the benches.

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/audit_stats.h"
#include "common/bitset.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/audit.h"
#include "obs/metrics.h"

namespace hgm {

/// Abstract Is-interesting oracle over sentences represented as sets.
///
/// Implementations must be *monotone downward*: if IsInteresting(x) and
/// y ⊆ x then IsInteresting(y) (the quality predicate q is monotone with
/// respect to the specialization relation; Section 2).
class InterestingnessOracle {
 public:
  virtual ~InterestingnessOracle() = default;

  /// Evaluates q(r, phi) for the sentence represented by \p x.
  virtual bool IsInteresting(const Bitset& x) = 0;

  /// Universe size of the representing set lattice.
  virtual size_t num_items() const = 0;

  /// Evaluates q on every sentence of \p batch; result[i] is nonzero iff
  /// batch[i] is interesting.  The levelwise algorithm (Algorithm 9)
  /// submits each candidate level C_l as one batch: the evaluations are
  /// mutually independent, so implementations backed by thread-safe data
  /// access may answer them in parallel.  The element type is uint8_t
  /// rather than bool because std::vector<bool> packs bits and cannot be
  /// written concurrently at distinct indices.
  ///
  /// Cost-model contract: a batch of size m counts as exactly m
  /// Is-interesting queries (Theorem 10's measure), and the answers must
  /// be identical to m sequential IsInteresting calls.  The default
  /// implementation is that sequential loop.
  virtual std::vector<uint8_t> EvaluateBatch(std::span<const Bitset> batch) {
    std::vector<uint8_t> out(batch.size(), 0);
    for (size_t i = 0; i < batch.size(); ++i) {
      out[i] = IsInteresting(batch[i]) ? 1 : 0;
    }
    return out;
  }
};

/// Adapts a callable to the oracle interface.
class FunctionOracle : public InterestingnessOracle {
 public:
  FunctionOracle(size_t num_items, std::function<bool(const Bitset&)> fn)
      : num_items_(num_items), fn_(std::move(fn)) {}

  bool IsInteresting(const Bitset& x) override { return fn_(x); }
  size_t num_items() const override { return num_items_; }

 private:
  size_t num_items_;
  std::function<bool(const Bitset&)> fn_;
};

/// \brief Counts queries issued to an underlying oracle.
///
/// Tracks both raw query count (the paper's cost measure: every evaluation
/// of q is charged) and the number of *distinct* sentences queried, which
/// separates algorithmic redundancy from inherent cost.  Can optionally
/// memoize so repeated questions are answered from cache while still being
/// counted as raw queries.
///
/// Counters are atomic and the seen-set is mutex-guarded, so the paper's
/// query accounting stays exact even when IsInteresting is invoked from a
/// parallel batch evaluation.  Batches are forwarded to the inner oracle
/// as batches (charging size() queries), preserving its parallel backend.
class CountingOracle : public InterestingnessOracle {
 public:
  /// Wraps \p inner (not owned).  If \p memoize is set, repeated queries
  /// do not re-evaluate the inner oracle.
  explicit CountingOracle(InterestingnessOracle* inner, bool memoize = false)
      : inner_(inner), memoize_(memoize) {}

  bool IsInteresting(const Bitset& x) override {
    ++raw_queries_;
    HGM_OBS_COUNT("oracle.raw_queries", 1);
    if (memoize_) {
      {
        ReaderMutexLock lock(mu_);
        auto it = cache_.find(x);
        if (it != cache_.end()) {
          HGM_OBS_COUNT("oracle.cache_hits", 1);
          return it->second;
        }
      }
      bool v = inner_->IsInteresting(x);
      WriterMutexLock lock(mu_);
      if (cache_.emplace(x, v).second) {
        ++distinct_queries_;
        HGM_OBS_COUNT("oracle.distinct_queries", 1);
      }
      return v;
    }
    {
      WriterMutexLock lock(mu_);
      if (seen_.insert(x).second) {
        ++distinct_queries_;
        HGM_OBS_COUNT("oracle.distinct_queries", 1);
      }
    }
    return inner_->IsInteresting(x);
  }

  std::vector<uint8_t> EvaluateBatch(
      std::span<const Bitset> batch) override {
    // A batch of size m is exactly m raw queries in both modes (the
    // paper's cost-model contract).
    raw_queries_ += batch.size();
    HGM_OBS_COUNT("oracle.raw_queries", batch.size());
    if (memoize_) {
      // Split hits from misses, then forward the misses as ONE inner
      // batch (mirroring CachedOracle::EvaluateBatch) — answering
      // element-wise here would silently lose the inner oracle's
      // parallel batching.
      std::vector<uint8_t> out(batch.size(), 0);
      std::vector<size_t> miss_idx;
      std::vector<Bitset> misses;
      {
        ReaderMutexLock lock(mu_);
        for (size_t i = 0; i < batch.size(); ++i) {
          auto it = cache_.find(batch[i]);
          if (it != cache_.end()) {
            out[i] = it->second ? 1 : 0;
          } else {
            miss_idx.push_back(i);
            misses.push_back(batch[i]);
          }
        }
      }
      HGM_OBS_COUNT("oracle.cache_hits", batch.size() - misses.size());
      if (!misses.empty()) {
        std::vector<uint8_t> answers = inner_->EvaluateBatch(misses);
        WriterMutexLock lock(mu_);
        for (size_t j = 0; j < misses.size(); ++j) {
          out[miss_idx[j]] = answers[j];
          if (cache_.emplace(std::move(misses[j]), answers[j] != 0)
                  .second) {
            ++distinct_queries_;
            HGM_OBS_COUNT("oracle.distinct_queries", 1);
          }
        }
      }
      return out;
    }
    {
      WriterMutexLock lock(mu_);
      for (const Bitset& x : batch) {
        if (seen_.insert(x).second) {
          ++distinct_queries_;
          HGM_OBS_COUNT("oracle.distinct_queries", 1);
        }
      }
    }
    return inner_->EvaluateBatch(batch);
  }

  size_t num_items() const override { return inner_->num_items(); }

  /// Total evaluations of q charged (the paper's measure).
  uint64_t raw_queries() const { return raw_queries_; }

  /// Number of distinct sentences ever asked about.
  uint64_t distinct_queries() const { return distinct_queries_; }

  /// Resets all counters (and the memo cache).
  void ResetCounters() {
    raw_queries_ = 0;
    distinct_queries_ = 0;
    WriterMutexLock lock(mu_);
    cache_.clear();
    seen_.clear();
  }

 private:
  InterestingnessOracle* inner_;
  bool memoize_;
  AtomicCounter raw_queries_;
  AtomicCounter distinct_queries_;
  SharedMutex mu_;
  std::unordered_map<Bitset, bool, BitsetHash> cache_ HGM_GUARDED_BY(mu_);
  std::unordered_set<Bitset, BitsetHash> seen_ HGM_GUARDED_BY(mu_);
};

/// \brief Thread-safe memoizing oracle wrapper.
///
/// Dualize-and-Advance (Algorithm 16) and the randomized walk miner
/// re-enumerate minimal transversals of a growing hypergraph, so they ask
/// the same Is-interesting questions again and again across iterations.
/// CachedOracle answers repeats from a hash cache while keeping the
/// paper's accounting exact: *every* ask is charged to raw_queries()
/// (cache hits included — the algorithm issued the query; Theorem 21
/// counts it), and inner_evaluations() reports how many actually reached
/// the underlying data.  All state is atomically / mutex guarded, so the
/// wrapper can also sit below a parallel batch evaluation.
class CachedOracle : public InterestingnessOracle {
 public:
  explicit CachedOracle(InterestingnessOracle* inner) : inner_(inner) {}

  bool IsInteresting(const Bitset& x) override {
    ++raw_queries_;
    HGM_OBS_COUNT("oracle.raw_queries", 1);
    {
      ReaderMutexLock lock(mu_);
      auto it = cache_.find(x);
      if (it != cache_.end()) {
        HGM_OBS_COUNT("oracle.cache_hits", 1);
        return it->second;
      }
    }
    // Deterministic oracle: a racing double-evaluation of the same
    // sentence is wasted work, never a wrong answer.
    bool v = inner_->IsInteresting(x);
    ++inner_evaluations_;
    HGM_OBS_COUNT("oracle.inner_evaluations", 1);
    WriterMutexLock lock(mu_);
    if (audit::kEnabled) AuditSpotCheck(x, v);
    cache_.emplace(x, v);
    return v;
  }

  std::vector<uint8_t> EvaluateBatch(
      std::span<const Bitset> batch) override {
    raw_queries_ += batch.size();
    HGM_OBS_COUNT("oracle.raw_queries", batch.size());
    std::vector<uint8_t> out(batch.size(), 0);
    // Split hits from misses, then forward the misses as one (possibly
    // parallel) inner batch.
    std::vector<size_t> miss_idx;
    std::vector<Bitset> misses;
    {
      ReaderMutexLock lock(mu_);
      for (size_t i = 0; i < batch.size(); ++i) {
        auto it = cache_.find(batch[i]);
        if (it != cache_.end()) {
          out[i] = it->second ? 1 : 0;
        } else {
          miss_idx.push_back(i);
          misses.push_back(batch[i]);
        }
      }
    }
    HGM_OBS_COUNT("oracle.cache_hits", batch.size() - misses.size());
    if (!misses.empty()) {
      std::vector<uint8_t> answers = inner_->EvaluateBatch(misses);
      inner_evaluations_ += misses.size();
      HGM_OBS_COUNT("oracle.inner_evaluations", misses.size());
      WriterMutexLock lock(mu_);
      for (size_t j = 0; j < misses.size(); ++j) {
        out[miss_idx[j]] = answers[j];
        if (audit::kEnabled) AuditSpotCheck(misses[j], answers[j] != 0);
        cache_.emplace(std::move(misses[j]), answers[j] != 0);
      }
    }
    return out;
  }

  size_t num_items() const override { return inner_->num_items(); }

  /// Every ask, cache hits included (the paper's query measure).
  uint64_t raw_queries() const { return raw_queries_; }

  /// Asks that actually evaluated the inner oracle (<= raw_queries()).
  uint64_t inner_evaluations() const { return inner_evaluations_; }

  /// Number of memoized sentences.
  size_t cache_size() const {
    ReaderMutexLock lock(mu_);
    return cache_.size();
  }

 private:
  /// Audit-mode monotonicity spot check (Section 2 precondition): the new
  /// answer is cross-checked against a ring of recent inner evaluations.
  /// Never queries the inner oracle, so Theorem 21 accounting is
  /// unchanged.  HGM_REQUIRES makes "caller holds the writer lock" a
  /// compile-checked contract rather than a comment.
  void AuditSpotCheck(const Bitset& x, bool v) HGM_REQUIRES(mu_) {
    for (const auto& [y, y_answer] : audit_ring_) {
      audit::AuditMonotonePair(x, v, y, y_answer, "CachedOracle");
    }
    if (audit_ring_.size() < kAuditRingCapacity) {
      audit_ring_.emplace_back(x, v);
    } else {
      audit_ring_[audit_ring_next_] = {x, v};
      audit_ring_next_ = (audit_ring_next_ + 1) % kAuditRingCapacity;
    }
  }

  static constexpr size_t kAuditRingCapacity = 16;

  InterestingnessOracle* inner_;
  AtomicCounter raw_queries_;
  AtomicCounter inner_evaluations_;
  mutable SharedMutex mu_;
  std::unordered_map<Bitset, bool, BitsetHash> cache_ HGM_GUARDED_BY(mu_);
  std::vector<std::pair<Bitset, bool>> audit_ring_ HGM_GUARDED_BY(mu_);
  size_t audit_ring_next_ HGM_GUARDED_BY(mu_) = 0;
};

/// \brief Debug wrapper that checks the monotonicity precondition.
///
/// Every algorithm in core/ assumes the predicate is monotone downward
/// (Section 2); feeding a non-monotone predicate silently yields wrong
/// borders.  This wrapper records all answers and flags the first pair
/// (x interesting, y ⊆ x not interesting) it witnesses.  O(history) per
/// query — for tests and debugging, not production runs.
class MonotonicityCheckingOracle : public InterestingnessOracle {
 public:
  explicit MonotonicityCheckingOracle(InterestingnessOracle* inner)
      : inner_(inner) {}

  bool IsInteresting(const Bitset& x) override {
    bool answer = inner_->IsInteresting(x);
    if (!violation_found_) {
      for (const auto& [y, y_answer] : history_) {
        // Downward monotone: interesting sets have interesting subsets.
        bool bad = (answer && y.IsSubsetOf(x) && !y_answer) ||
                   (!answer && x.IsSubsetOf(y) && y_answer);
        if (bad) {
          violation_found_ = true;
          violation_interesting_ = answer ? x : y;
          violation_subset_ = answer ? y : x;
          break;
        }
      }
      history_.emplace_back(x, answer);
    }
    return answer;
  }

  size_t num_items() const override { return inner_->num_items(); }

  /// True iff a monotonicity violation was witnessed.
  bool violation_found() const { return violation_found_; }

  /// The witnessing pair: an interesting set whose recorded subset was
  /// reported non-interesting.  Meaningful only if violation_found().
  const Bitset& violation_interesting() const {
    return violation_interesting_;
  }
  const Bitset& violation_subset() const { return violation_subset_; }

 private:
  InterestingnessOracle* inner_;
  std::vector<std::pair<Bitset, bool>> history_;
  bool violation_found_ = false;
  Bitset violation_interesting_{0};
  Bitset violation_subset_{0};
};

}  // namespace hgm
