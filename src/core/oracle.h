#pragma once

/// \file oracle.h
/// \brief The Is-interesting query model of Section 3.
///
/// The paper's model of computation charges only for questions of the form
/// "does q(r, phi) hold?".  Every mining / learning algorithm in this
/// library accesses its data exclusively through an InterestingnessOracle,
/// and CountingOracle implements the cost accounting used by Theorem 2,
/// Corollary 4, Theorem 10, Theorem 21 and the benches.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/bitset.h"

namespace hgm {

/// Abstract Is-interesting oracle over sentences represented as sets.
///
/// Implementations must be *monotone downward*: if IsInteresting(x) and
/// y ⊆ x then IsInteresting(y) (the quality predicate q is monotone with
/// respect to the specialization relation; Section 2).
class InterestingnessOracle {
 public:
  virtual ~InterestingnessOracle() = default;

  /// Evaluates q(r, phi) for the sentence represented by \p x.
  virtual bool IsInteresting(const Bitset& x) = 0;

  /// Universe size of the representing set lattice.
  virtual size_t num_items() const = 0;
};

/// Adapts a callable to the oracle interface.
class FunctionOracle : public InterestingnessOracle {
 public:
  FunctionOracle(size_t num_items, std::function<bool(const Bitset&)> fn)
      : num_items_(num_items), fn_(std::move(fn)) {}

  bool IsInteresting(const Bitset& x) override { return fn_(x); }
  size_t num_items() const override { return num_items_; }

 private:
  size_t num_items_;
  std::function<bool(const Bitset&)> fn_;
};

/// \brief Counts queries issued to an underlying oracle.
///
/// Tracks both raw query count (the paper's cost measure: every evaluation
/// of q is charged) and the number of *distinct* sentences queried, which
/// separates algorithmic redundancy from inherent cost.  Can optionally
/// memoize so repeated questions are answered from cache while still being
/// counted as raw queries.
class CountingOracle : public InterestingnessOracle {
 public:
  /// Wraps \p inner (not owned).  If \p memoize is set, repeated queries
  /// do not re-evaluate the inner oracle.
  explicit CountingOracle(InterestingnessOracle* inner, bool memoize = false)
      : inner_(inner), memoize_(memoize) {}

  bool IsInteresting(const Bitset& x) override {
    ++raw_queries_;
    if (memoize_) {
      auto it = cache_.find(x);
      if (it != cache_.end()) return it->second;
      bool v = inner_->IsInteresting(x);
      cache_.emplace(x, v);
      ++distinct_queries_;
      return v;
    }
    if (seen_.insert(x).second) ++distinct_queries_;
    return inner_->IsInteresting(x);
  }

  size_t num_items() const override { return inner_->num_items(); }

  /// Total evaluations of q charged (the paper's measure).
  uint64_t raw_queries() const { return raw_queries_; }

  /// Number of distinct sentences ever asked about.
  uint64_t distinct_queries() const { return distinct_queries_; }

  /// Resets all counters (and the memo cache).
  void ResetCounters() {
    raw_queries_ = 0;
    distinct_queries_ = 0;
    cache_.clear();
    seen_.clear();
  }

 private:
  InterestingnessOracle* inner_;
  bool memoize_;
  uint64_t raw_queries_ = 0;
  uint64_t distinct_queries_ = 0;
  std::unordered_map<Bitset, bool, BitsetHash> cache_;
  std::unordered_set<Bitset, BitsetHash> seen_;
};

/// \brief Debug wrapper that checks the monotonicity precondition.
///
/// Every algorithm in core/ assumes the predicate is monotone downward
/// (Section 2); feeding a non-monotone predicate silently yields wrong
/// borders.  This wrapper records all answers and flags the first pair
/// (x interesting, y ⊆ x not interesting) it witnesses.  O(history) per
/// query — for tests and debugging, not production runs.
class MonotonicityCheckingOracle : public InterestingnessOracle {
 public:
  explicit MonotonicityCheckingOracle(InterestingnessOracle* inner)
      : inner_(inner) {}

  bool IsInteresting(const Bitset& x) override {
    bool answer = inner_->IsInteresting(x);
    if (!violation_found_) {
      for (const auto& [y, y_answer] : history_) {
        // Downward monotone: interesting sets have interesting subsets.
        bool bad = (answer && y.IsSubsetOf(x) && !y_answer) ||
                   (!answer && x.IsSubsetOf(y) && y_answer);
        if (bad) {
          violation_found_ = true;
          violation_interesting_ = answer ? x : y;
          violation_subset_ = answer ? y : x;
          break;
        }
      }
      history_.emplace_back(x, answer);
    }
    return answer;
  }

  size_t num_items() const override { return inner_->num_items(); }

  /// True iff a monotonicity violation was witnessed.
  bool violation_found() const { return violation_found_; }

  /// The witnessing pair: an interesting set whose recorded subset was
  /// reported non-interesting.  Meaningful only if violation_found().
  const Bitset& violation_interesting() const {
    return violation_interesting_;
  }
  const Bitset& violation_subset() const { return violation_subset_; }

 private:
  InterestingnessOracle* inner_;
  std::vector<std::pair<Bitset, bool>> history_;
  bool violation_found_ = false;
  Bitset violation_interesting_{0};
  Bitset violation_subset_{0};
};

}  // namespace hgm
