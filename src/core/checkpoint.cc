#include "core/checkpoint.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/parse.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace hgm {

namespace {

constexpr char kHeader[] = "hgmine-checkpoint v1";

bool ValidName(std::string_view name) {
  if (name.empty() || name.size() > kMaxCheckpointNameLength) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Status Fail(size_t line_no, const std::string& what) {
  return Status::InvalidArgument("checkpoint:" + std::to_string(line_no) +
                                 ": " + what);
}

}  // namespace

void Checkpoint::SetScalar(const std::string& name, uint64_t value) {
  for (auto& [n, v] : scalars) {
    if (n == name) {
      v = value;
      return;
    }
  }
  scalars.emplace_back(name, value);
}

bool Checkpoint::GetScalar(const std::string& name, uint64_t* out) const {
  for (const auto& [n, v] : scalars) {
    if (n == name) {
      *out = v;
      return true;
    }
  }
  return false;
}

std::vector<CheckpointEntry>* Checkpoint::AddSection(const std::string& name) {
  sections.emplace_back(name, std::vector<CheckpointEntry>{});
  return &sections.back().second;
}

const std::vector<CheckpointEntry>* Checkpoint::FindSection(
    const std::string& name) const {
  for (const auto& [n, entries] : sections) {
    if (n == name) return &entries;
  }
  return nullptr;
}

std::string SerializeCheckpoint(const Checkpoint& cp) {
  std::ostringstream out;
  out << kHeader << "\n";
  out << "kind " << cp.kind << "\n";
  out << "width " << cp.width << "\n";
  for (const auto& [name, value] : cp.scalars) {
    out << "scalar " << name << " " << value << "\n";
  }
  for (const auto& [name, entries] : cp.sections) {
    out << "section " << name << " " << entries.size() << "\n";
    for (const CheckpointEntry& e : entries) {
      out << e.items.Count() << " " << e.value;
      e.items.ForEach([&](size_t v) { out << " " << v; });
      out << "\n";
    }
  }
  out << "end\n";
  return out.str();
}

Result<Checkpoint> ParseCheckpoint(std::string_view text) {
  Checkpoint cp;
  // Parser state machine: header -> kind -> width -> body (scalars and
  // sections, a section swallowing its declared entry lines) -> end.
  enum class Expect { kHeader, kKind, kWidth, kBody, kEntry, kDone };
  Expect expect = Expect::kHeader;
  size_t pending_entries = 0;        // entry lines left in the open section
  std::vector<CheckpointEntry>* open_section = nullptr;
  size_t total_entries = 0;
  uint64_t total_bits = 0;
  std::vector<std::string_view> tokens;

  Status s = ForEachDataLine(
      text, "checkpoint",
      [&](size_t line_no, std::string_view line) -> Status {
        SplitDataTokens(line, &tokens);
        if (tokens.empty()) return Status::OK();  // blank line
        switch (expect) {
          case Expect::kHeader: {
            if (line != kHeader) {
              return Fail(line_no, "missing 'hgmine-checkpoint v1' header");
            }
            expect = Expect::kKind;
            return Status::OK();
          }
          case Expect::kKind: {
            if (tokens.size() != 2 || tokens[0] != "kind" ||
                !ValidName(tokens[1])) {
              return Fail(line_no, "expected 'kind <name>'");
            }
            cp.kind = std::string(tokens[1]);
            expect = Expect::kWidth;
            return Status::OK();
          }
          case Expect::kWidth: {
            uint64_t w = 0;
            if (tokens.size() != 2 || tokens[0] != "width") {
              return Fail(line_no, "expected 'width <n>'");
            }
            Status ps = ParseUnsignedToken(tokens[1], kMaxParseId + 1,
                                          "checkpoint", line_no, &w);
            if (!ps.ok()) return ps;
            cp.width = static_cast<size_t>(w);
            expect = Expect::kBody;
            return Status::OK();
          }
          case Expect::kEntry: {
            // "<k> <value> <item>*k", every item < width.
            uint64_t k = 0;
            Status ps = ParseUnsignedToken(tokens[0], cp.width, "checkpoint",
                                           line_no, &k);
            if (!ps.ok()) return ps;
            if (tokens.size() != 2 + static_cast<size_t>(k)) {
              return Fail(line_no,
                          "entry declares " + std::to_string(k) +
                              " items but carries " +
                              std::to_string(tokens.size() - 2));
            }
            total_bits += cp.width;
            if (total_bits > kMaxCheckpointTotalBits) {
              return Fail(line_no, "checkpoint exceeds the total-bits cap");
            }
            CheckpointEntry entry;
            ps = ParseUnsignedToken(tokens[1],
                                    std::numeric_limits<uint64_t>::max(),
                                    "checkpoint", line_no, &entry.value);
            if (!ps.ok()) return ps;
            entry.items = Bitset(cp.width);
            for (size_t i = 2; i < tokens.size(); ++i) {
              uint64_t id = 0;
              ps = ParseUnsignedToken(tokens[i],
                                      cp.width == 0 ? 0 : cp.width - 1,
                                      "checkpoint", line_no, &id);
              if (!ps.ok()) return ps;
              if (entry.items.Test(static_cast<size_t>(id))) {
                return Fail(line_no, "duplicate item id in entry");
              }
              entry.items.Set(static_cast<size_t>(id));
            }
            open_section->push_back(std::move(entry));
            if (--pending_entries == 0) expect = Expect::kBody;
            return Status::OK();
          }
          case Expect::kBody: {
            if (tokens[0] == "end") {
              if (tokens.size() != 1) return Fail(line_no, "trailing tokens");
              expect = Expect::kDone;
              return Status::OK();
            }
            if (tokens[0] == "scalar") {
              if (tokens.size() != 3 || !ValidName(tokens[1])) {
                return Fail(line_no, "expected 'scalar <name> <value>'");
              }
              if (cp.scalars.size() >= kMaxCheckpointScalars) {
                return Fail(line_no, "too many scalars");
              }
              uint64_t v = 0;
              Status ps = ParseUnsignedToken(
                  tokens[2], std::numeric_limits<uint64_t>::max(),
                  "checkpoint", line_no, &v);
              if (!ps.ok()) return ps;
              cp.scalars.emplace_back(std::string(tokens[1]), v);
              return Status::OK();
            }
            if (tokens[0] == "section") {
              if (tokens.size() != 3 || !ValidName(tokens[1])) {
                return Fail(line_no, "expected 'section <name> <count>'");
              }
              if (cp.sections.size() >= kMaxCheckpointSections) {
                return Fail(line_no, "too many sections");
              }
              uint64_t count = 0;
              Status ps = ParseUnsignedToken(tokens[2], kMaxCheckpointEntries,
                                             "checkpoint", line_no, &count);
              if (!ps.ok()) return ps;
              total_entries += static_cast<size_t>(count);
              if (total_entries > kMaxCheckpointEntries) {
                return Fail(line_no, "too many entries across sections");
              }
              open_section = cp.AddSection(std::string(tokens[1]));
              open_section->reserve(static_cast<size_t>(count));
              pending_entries = static_cast<size_t>(count);
              if (pending_entries > 0) expect = Expect::kEntry;
              return Status::OK();
            }
            return Fail(line_no, "expected 'scalar', 'section', or 'end'");
          }
          case Expect::kDone:
            return Fail(line_no, "content after 'end'");
        }
        return Fail(line_no, "unreachable parser state");
      });
  if (!s.ok()) return s;
  if (expect != Expect::kDone) {
    return Status::InvalidArgument(
        "checkpoint: truncated (missing 'end' terminator)");
  }
  return cp;
}

Status SaveCheckpointFile(const Checkpoint& cp, const std::string& path) {
  std::string text = SerializeCheckpoint(cp);
  // Write-temp-then-rename: a reader (or a crash, or a second thread
  // checkpointing into the same directory) must never observe a partial
  // file at `path`.  The temp name is unique per (process, call), so
  // concurrent saves of distinct sessions in one directory cannot
  // interleave; rename(2) within a directory is atomic, so concurrent
  // saves of the SAME path each land whole — last writer wins.
  static std::atomic<uint64_t> save_seq{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(save_seq.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open checkpoint file for writing: " +
                             tmp);
    }
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out) {
      (void)std::remove(tmp.c_str());  // best-effort temp cleanup
      return Status::IOError("short write to checkpoint file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());  // best-effort temp cleanup
    return Status::IOError("cannot rename checkpoint into place: " + path);
  }
  HGM_OBS_COUNT("robustness.checkpoints", 1);
  HGM_OBS_COUNT("robustness.checkpoint_bytes", text.size());
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kCheckpoint, "checkpoint.save",
      static_cast<int64_t>(text.size()));
  return Status::OK();
}

Result<Checkpoint> LoadCheckpointFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open checkpoint file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("read error on " + path);
  Result<Checkpoint> parsed = ParseCheckpoint(buf.str());
  if (parsed.ok()) {
    HGM_OBS_COUNT("robustness.resumes", 1);
    obs::FlightRecorder::Global().Record(
        obs::FlightEventType::kCheckpoint, "checkpoint.load",
        static_cast<int64_t>(buf.str().size()));
  }
  return parsed;
}

void AddSetSection(Checkpoint* cp, const std::string& name,
                   const std::vector<Bitset>& sets) {
  std::vector<CheckpointEntry>* section = cp->AddSection(name);
  section->reserve(sets.size());
  for (const Bitset& s : sets) section->push_back({s, 0});
}

void AddCountSection(Checkpoint* cp, const std::string& name,
                     const std::vector<size_t>& counts) {
  std::vector<CheckpointEntry>* section = cp->AddSection(name);
  section->reserve(counts.size());
  for (size_t c : counts) section->push_back({Bitset(cp->width), c});
}

Status ReadSetSection(const Checkpoint& cp, const std::string& name,
                      size_t width, std::vector<Bitset>* out) {
  out->clear();
  const std::vector<CheckpointEntry>* section = cp.FindSection(name);
  if (section == nullptr) return Status::OK();
  out->reserve(section->size());
  for (const CheckpointEntry& e : *section) {
    if (e.items.size() != width) {
      return Status::InvalidArgument("checkpoint section '" + name +
                                     "' has a set over " +
                                     std::to_string(e.items.size()) +
                                     " items, expected " +
                                     std::to_string(width));
    }
    out->push_back(e.items);
  }
  return Status::OK();
}

Status ReadCountSection(const Checkpoint& cp, const std::string& name,
                        std::vector<size_t>* out) {
  out->clear();
  const std::vector<CheckpointEntry>* section = cp.FindSection(name);
  if (section == nullptr) return Status::OK();
  out->reserve(section->size());
  for (const CheckpointEntry& e : *section) {
    out->push_back(static_cast<size_t>(e.value));
  }
  return Status::OK();
}

}  // namespace hgm
