#include "core/audit.h"

#include <sstream>
#include <string>
#include <unordered_set>

#include "core/theory.h"
#include "hypergraph/transversal_berge.h"

namespace hgm {
namespace audit {

namespace {

std::string FamilyToString(std::span<const Bitset> family, size_t limit = 8) {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < family.size() && i < limit; ++i) {
    if (i) os << ", ";
    os << family[i].ToString();
  }
  if (family.size() > limit) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace

bool AuditAntichain(std::span<const Bitset> family, const char* where) {
  ChargeChecks(Contract::kAntichain, family.size());
  for (size_t i = 0; i < family.size(); ++i) {
    for (size_t j = 0; j < family.size(); ++j) {
      if (i != j && family[i].IsSubsetOf(family[j])) {
        ReportViolation(
            Contract::kAntichain,
            std::string(where) + ": " + family[i].ToString() +
                " is contained in " + family[j].ToString() + " within " +
                FamilyToString(family));
        return false;
      }
    }
  }
  return true;
}

bool AuditFrontierClosure(std::span<const Bitset> lower,
                          std::span<const Bitset> upper, const char* where) {
  ChargeChecks(Contract::kClosure, upper.size());
  std::unordered_set<Bitset, BitsetHash> lower_set(lower.begin(),
                                                   lower.end());
  for (const Bitset& u : upper) {
    for (size_t v = u.FindFirst(); v != Bitset::npos; v = u.FindNext(v)) {
      Bitset sub = u.WithoutBit(v);
      if (!lower_set.contains(sub)) {
        ReportViolation(
            Contract::kClosure,
            std::string(where) + ": frontier member " + u.ToString() +
                " has subset " + sub.ToString() +
                " missing from the previous frontier (theory is not "
                "downward closed)");
        return false;
      }
    }
  }
  return true;
}

bool AuditBorderDuality(const std::vector<Bitset>& positive,
                        const std::vector<Bitset>& negative, size_t num_items,
                        const char* where) {
  ChargeChecks(Contract::kDuality, 1);
  BergeTransversals berge;
  std::vector<Bitset> expected =
      NegativeBorderViaTransversals(positive, num_items, &berge);
  if (!SameFamily(expected, negative)) {
    ReportViolation(
        Contract::kDuality,
        std::string(where) + ": Bd- " + FamilyToString(negative) +
            " != Tr(H(Bd+)) " + FamilyToString(expected) + " for Bd+ " +
            FamilyToString(positive));
    return false;
  }
  return true;
}

bool AuditMonotonePair(const Bitset& x, bool x_interesting, const Bitset& y,
                       bool y_interesting, const char* where) {
  ChargeChecks(Contract::kMonotonicity, 1);
  bool bad = (x.IsSubsetOf(y) && y_interesting && !x_interesting) ||
             (y.IsSubsetOf(x) && x_interesting && !y_interesting);
  if (bad) {
    const Bitset& sup = x.IsSubsetOf(y) ? y : x;
    const Bitset& sub = x.IsSubsetOf(y) ? x : y;
    ReportViolation(Contract::kMonotonicity,
                    std::string(where) + ": " + sup.ToString() +
                        " is interesting but its subset " + sub.ToString() +
                        " is not (predicate is not monotone downward)");
    return false;
  }
  return true;
}

}  // namespace audit
}  // namespace hgm
