#pragma once

/// \file set_language.h
/// \brief Representing a language as sets (Definition 6).
///
/// A language L with specialization relation ⪯ is *representable as sets*
/// if there is a bijection f : L -> P(R) with theta ⪯ phi  <=>
/// f(theta) ⊆ f(phi).  All lattice algorithms in core/ operate on the
/// image P(R); SetLanguage carries R's size and human-readable item names
/// so instances (itemsets, attribute sets, variable sets) can render their
/// sentences.

#include <string>
#include <vector>

#include "common/bitset.h"

namespace hgm {

/// The representation target P(R): |R| items with optional names.
class SetLanguage {
 public:
  /// Items named "A", "B", ..., "Z", "#26", ... by default.
  explicit SetLanguage(size_t num_items) : names_(num_items) {
    for (size_t i = 0; i < num_items; ++i) {
      if (i < 26) {
        names_[i] = std::string(1, static_cast<char>('A' + i));
      } else {
        names_[i] = "#" + std::to_string(i);
      }
    }
  }

  /// Items with explicit names.
  explicit SetLanguage(std::vector<std::string> names)
      : names_(std::move(names)) {}

  size_t num_items() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }
  const std::string& name(size_t i) const { return names_[i]; }

  /// Renders a sentence: "ABD" for single-character item names, or
  /// "dept,mgr" when any name is longer.
  std::string Format(const Bitset& x) const {
    return x.Format(names_, separator());
  }

  /// Renders a family, e.g. "{ABC, BD}".
  std::string Format(const std::vector<Bitset>& family) const {
    std::string out = "{";
    for (size_t i = 0; i < family.size(); ++i) {
      if (i) out += ", ";
      out += Format(family[i]);
    }
    out += "}";
    return out;
  }

  /// width(L, ⪯) for a subset lattice: every set has at most n immediate
  /// successors (Theorem 12's width factor).
  size_t width() const { return names_.size(); }

 private:
  std::string separator() const {
    for (const auto& name : names_) {
      if (name.size() > 1) return ",";
    }
    return "";
  }

  std::vector<std::string> names_;
};

}  // namespace hgm
