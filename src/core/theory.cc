#include "core/theory.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/apriori_gen.h"

namespace hgm {

std::vector<Bitset> PositiveBorder(std::vector<Bitset> s) {
  AntichainMaximize(&s);
  return s;
}

std::vector<Bitset> NegativeBorderViaTransversals(
    const std::vector<Bitset>& s, size_t n, TransversalAlgorithm* engine) {
  // H(S) = { R \ f(phi) : phi in Bd+(S) }  (Theorem 7).
  std::vector<Bitset> maximal = PositiveBorder(s);
  Hypergraph h(n);
  for (const auto& m : maximal) h.AddEdge(~m);
  if (h.empty()) {
    // S empty: every singleton... no — the downward closure of ∅ is empty,
    // so the unique minimal set outside it is ∅ itself.  Tr of the
    // edge-free hypergraph is {∅}, which engine->Compute returns.
  }
  return engine->Compute(h).SortedEdges();
}

std::vector<Bitset> NegativeBorderViaGeneration(const std::vector<Bitset>& s,
                                                size_t n) {
  std::vector<Bitset> border;
  if (s.empty()) {
    border.push_back(Bitset(n));
    return border;
  }
  size_t max_k = 0;
  for (const Bitset& x : s) max_k = std::max(max_k, x.Count());
  std::vector<std::vector<ItemVec>> levels(max_k + 1);
  std::vector<std::unordered_set<Bitset, BitsetHash>> level_sets(max_k + 2);
  for (const Bitset& x : s) {
    const size_t k = x.Count();
    ItemVec v;
    v.reserve(k);
    x.ForEach([&](size_t i) { v.push_back(static_cast<uint32_t>(i)); });
    levels[k].push_back(std::move(v));
    level_sets[k].insert(x);
  }
  for (std::vector<ItemVec>& level : levels) {
    std::sort(level.begin(), level.end());
  }
  // Level 1 is not a join: the minimal infrequent singletons are simply
  // the items outside s (s downward closed and non-empty contains ∅, so
  // ∅ is never in the border here).
  for (size_t v = 0; v < n; ++v) {
    Bitset single = Bitset::Singleton(n, v);
    if (!level_sets[1].contains(single)) border.push_back(std::move(single));
  }
  for (size_t k = 1; k <= max_k; ++k) {
    if (levels[k].empty()) break;  // downward closed: nothing above either
    std::vector<ItemVec> cands = AprioriGen(levels[k], level_sets[k], n);
    for (const ItemVec& cand : cands) {
      Bitset x = Bitset::FromIndices(n, cand);
      if (!level_sets[k + 1].contains(x)) border.push_back(std::move(x));
    }
  }
  CanonicalSort(&border);
  return border;
}

std::vector<Bitset> NegativeBorderBrute(const std::vector<Bitset>& s,
                                        size_t n) {
  assert(n <= 22 && "brute-force border needs small n");
  std::vector<Bitset> maximal = PositiveBorder(s);
  auto in_closure = [&](const Bitset& x) {
    for (const auto& m : maximal) {
      if (x.IsSubsetOf(m)) return true;
    }
    return false;
  };
  std::vector<Bitset> outside;
  const uint64_t limit = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    Bitset x(n);
    for (size_t v = 0; v < n; ++v) {
      if ((mask >> v) & 1) x.Set(v);
    }
    if (!in_closure(x)) outside.push_back(std::move(x));
  }
  AntichainMinimize(&outside);
  CanonicalSort(&outside);
  return outside;
}

std::vector<Bitset> DownwardClosure(const std::vector<Bitset>& s, size_t n) {
  std::unordered_set<Bitset, BitsetHash> seen;
  std::vector<Bitset> stack(s.begin(), s.end());
  while (!stack.empty()) {
    Bitset x = std::move(stack.back());
    stack.pop_back();
    if (!seen.insert(x).second) continue;
    for (size_t v = x.FindFirst(); v != Bitset::npos; v = x.FindNext(v)) {
      Bitset sub = x.WithoutBit(v);
      if (!seen.contains(sub)) stack.push_back(std::move(sub));
    }
  }
  std::vector<Bitset> out(seen.begin(), seen.end());
  CanonicalSort(&out);
  (void)n;
  return out;
}

std::vector<Bitset> ComputeTheoryBrute(InterestingnessOracle* oracle) {
  const size_t n = oracle->num_items();
  assert(n <= 22 && "brute-force theory needs small n");
  std::vector<Bitset> theory;
  const uint64_t limit = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    Bitset x(n);
    for (size_t v = 0; v < n; ++v) {
      if ((mask >> v) & 1) x.Set(v);
    }
    if (oracle->IsInteresting(x)) theory.push_back(std::move(x));
  }
  CanonicalSort(&theory);
  return theory;
}

std::vector<Bitset> MaxTheoryBrute(InterestingnessOracle* oracle) {
  std::vector<Bitset> theory = ComputeTheoryBrute(oracle);
  AntichainMaximize(&theory);
  CanonicalSort(&theory);
  return theory;
}

size_t RankOf(const std::vector<Bitset>& c) {
  size_t rank = 0;
  for (const auto& x : c) rank = std::max(rank, x.Count());
  return rank;
}

void CanonicalSort(std::vector<Bitset>* sets) {
  std::sort(sets->begin(), sets->end(),
            [](const Bitset& a, const Bitset& b) {
              size_t ca = a.Count(), cb = b.Count();
              if (ca != cb) return ca < cb;
              return a < b;
            });
}

bool SameFamily(std::vector<Bitset> a, std::vector<Bitset> b) {
  CanonicalSort(&a);
  a.erase(std::unique(a.begin(), a.end()), a.end());
  CanonicalSort(&b);
  b.erase(std::unique(b.begin(), b.end()), b.end());
  return a == b;
}

}  // namespace hgm
