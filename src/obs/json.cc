#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace hgm {
namespace obs {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) found = &v;  // duplicate keys keep the last, like python
  }
  return found;
}

double JsonValue::NumberAt(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->AsNumber() : fallback;
}

std::string JsonValue::StringAt(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : fallback;
}

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> a) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(a);
  return v;
}

JsonValue JsonValue::Object(
    std::vector<std::pair<std::string, JsonValue>> o) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(o);
  return v;
}

namespace {

/// Nesting cap: run reports nest ~5 deep; 64 leaves headroom while
/// keeping a corrupt file from recursing off the stack.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    Status st = ParseValue(&v, 0);
    if (!st.ok()) return st;
    SkipWs();
    if (pos_ != s_.size()) {
      return Error("trailing garbage after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= s_.size()) return Error("unexpected end of input");
    switch (s_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string str;
        Status st = ParseString(&str);
        if (!st.ok()) return st;
        *out = JsonValue::String(std::move(str));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue::Null(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* word, JsonValue value, JsonValue* out) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!Consume(*p)) return Error("bad literal");
    }
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token = s_.substr(start, pos_ - start);
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d)) {
      return Error("malformed number '" + token + "'");
    }
    *out = JsonValue::Number(d);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      char esc = s_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // Our emitters only escape control characters; decode the
          // basic-multilingual-plane code point as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    std::vector<JsonValue> items;
    SkipWs();
    if (Consume(']')) {
      *out = JsonValue::Array(std::move(items));
      return Status::OK();
    }
    while (true) {
      JsonValue item;
      Status st = ParseValue(&item, depth + 1);
      if (!st.ok()) return st;
      items.push_back(std::move(item));
      SkipWs();
      if (Consume(']')) break;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
    *out = JsonValue::Array(std::move(items));
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWs();
    if (Consume('}')) {
      *out = JsonValue::Object(std::move(members));
      return Status::OK();
    }
    while (true) {
      SkipWs();
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) return st;
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      st = ParseValue(&value, depth + 1);
      if (!st.ok()) return st;
      members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) break;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
    *out = JsonValue::Object(std::move(members));
    return Status::OK();
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

namespace {

void DumpTo(const JsonValue& value, std::string* out) {
  switch (value.type()) {
    case JsonValue::Type::kNull:
      out->append("null");
      return;
    case JsonValue::Type::kBool:
      out->append(value.AsBool() ? "true" : "false");
      return;
    case JsonValue::Type::kNumber: {
      const double d = value.AsNumber();
      // Counts and ids are exact in a double up to 2^53; render them as
      // the integers they are so round-trips stay textual fixed points.
      if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) <= 9e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        out->append(buf);
      } else if (std::isfinite(d)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        out->append(buf);
      } else {
        out->append("null");  // JSON has no inf/nan
      }
      return;
    }
    case JsonValue::Type::kString: {
      out->push_back('"');
      for (char c : value.AsString()) {
        switch (c) {
          case '"':
            out->append("\\\"");
            break;
          case '\\':
            out->append("\\\\");
            break;
          case '\n':
            out->append("\\n");
            break;
          case '\r':
            out->append("\\r");
            break;
          case '\t':
            out->append("\\t");
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
              char buf[8];
              std::snprintf(buf, sizeof(buf), "\\u%04x",
                            static_cast<unsigned>(
                                static_cast<unsigned char>(c)));
              out->append(buf);
            } else {
              out->push_back(c);
            }
        }
      }
      out->push_back('"');
      return;
    }
    case JsonValue::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : value.AsArray()) {
        if (!first) out->push_back(',');
        first = false;
        DumpTo(v, out);
      }
      out->push_back(']');
      return;
    }
    case JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : value.AsObject()) {
        if (!first) out->push_back(',');
        first = false;
        DumpTo(JsonValue::String(k), out);
        out->push_back(':');
        DumpTo(v, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

std::string DumpJson(const JsonValue& value) {
  std::string out;
  DumpTo(value, &out);
  return out;
}

}  // namespace obs
}  // namespace hgm
