#pragma once

/// \file json.h
/// \brief A minimal JSON value tree and recursive-descent parser.
///
/// The observability layer *emits* JSON everywhere (metric snapshots,
/// traces, run reports, bench envelopes) and until now nothing in-tree
/// could read any of it back — round-trip validation lived in optional
/// python post-processing.  This parser closes the loop: the run-report
/// tests parse the emitted envelope and compare field by field, and
/// ValidateRunReportJson (run_report.h) lints required keys at runtime.
///
/// Scope is deliberately small: full JSON syntax, materialized into a
/// tree of JsonValue nodes.  Numbers are held as double (every number we
/// emit is a count, a ratio, or a millisecond figure — all exact in a
/// double up to 2^53, far beyond any tally here).  Inputs are trusted
/// in-process artifacts, but the parser still hard-caps nesting depth so
/// a corrupt file fails with a Status instead of a stack overflow.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace hgm {
namespace obs {

/// One node of a parsed JSON document.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  /// Object members in document order (duplicate keys keep the last).
  const std::vector<std::pair<std::string, JsonValue>>& AsObject() const {
    return object_;
  }

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience chained lookups for tests: returns fallback when the
  /// path is absent or the wrong type.
  double NumberAt(const std::string& key, double fallback = 0) const;
  std::string StringAt(const std::string& key,
                       const std::string& fallback = "") const;

  static JsonValue Null();
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> a);
  static JsonValue Object(std::vector<std::pair<std::string, JsonValue>> o);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses \p text as one JSON document (trailing whitespace allowed,
/// trailing garbage is an error).  Depth is capped at 64 nested
/// containers.
Result<JsonValue> ParseJson(const std::string& text);

/// Serializes \p value as compact single-line JSON (no whitespace, keys
/// in stored order, full string escaping).  Numbers that are exactly
/// integral within the double-exact range print without a fraction, so
/// counts round-trip as the integers they are.  The serve protocol's
/// request/response lines are built through this — one value, one line.
std::string DumpJson(const JsonValue& value);

}  // namespace obs
}  // namespace hgm
