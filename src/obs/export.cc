#include "obs/export.h"

#include <cctype>

#include "common/table_printer.h"

namespace hgm {
namespace obs {

namespace {

std::string Indent(int n) { return std::string(static_cast<size_t>(n), ' '); }

}  // namespace

void WriteJsonSnapshot(const MetricsSnapshot& snap, std::ostream& os,
                       int indent) {
  const std::string pad = Indent(indent);
  const std::string in1 = Indent(indent + 2);
  const std::string in2 = Indent(indent + 4);
  os << "{\n" << in1 << "\"counters\": {";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i ? "," : "") << "\n"
       << in2 << "\"" << snap.counters[i].first
       << "\": " << snap.counters[i].second;
  }
  os << (snap.counters.empty() ? "" : "\n" + in1) << "},\n";
  os << in1 << "\"gauges\": {";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i ? "," : "") << "\n"
       << in2 << "\"" << snap.gauges[i].first
       << "\": " << snap.gauges[i].second;
  }
  os << (snap.gauges.empty() ? "" : "\n" + in1) << "},\n";
  os << in1 << "\"histograms\": {";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& [name, h] = snap.histograms[i];
    os << (i ? "," : "") << "\n"
       << in2 << "\"" << name << "\": {\"count\": " << h.count
       << ", \"sum\": " << h.sum << ", \"max\": " << h.max
       << ", \"buckets\": [";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b ? ", " : "") << "[" << h.buckets[b].first << ", "
         << h.buckets[b].second << "]";
    }
    os << "]}";
  }
  os << (snap.histograms.empty() ? "" : "\n" + in1) << "}\n" << pad << "}";
  if (indent == 0) os << "\n";
}

std::string PrometheusName(const std::string& name) {
  std::string out = "hgm_";
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out;
}

void WritePrometheus(const MetricsSnapshot& snap, std::ostream& os) {
  for (const auto& [name, value] : snap.counters) {
    const std::string p = PrometheusName(name);
    os << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string p = PrometheusName(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << value << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string p = PrometheusName(name);
    os << "# TYPE " << p << " histogram\n";
    uint64_t cumulative = 0;
    for (const auto& [upper, count] : h.buckets) {
      cumulative += count;
      os << p << "_bucket{le=\"" << upper << "\"} " << cumulative << "\n";
    }
    os << p << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << p << "_sum " << h.sum << "\n";
    os << p << "_count " << h.count << "\n";
  }
}

void PrintMetricsTable(const MetricsSnapshot& snap, std::ostream& os) {
  TablePrinter t({"metric", "kind", "value", "detail"});
  for (const auto& [name, value] : snap.counters) {
    t.NewRow().Add(name).Add("counter").Add(value).Add("");
  }
  for (const auto& [name, value] : snap.gauges) {
    t.NewRow().Add(name).Add("gauge").Add(value).Add("");
  }
  for (const auto& [name, h] : snap.histograms) {
    t.NewRow().Add(name).Add("histogram").Add(h.count).Add(
        "sum=" + std::to_string(h.sum) + " max=" + std::to_string(h.max));
  }
  t.Print(os);
}

}  // namespace obs
}  // namespace hgm
