#pragma once

/// \file export.h
/// \brief Exporters for the metrics registry: JSON snapshot,
/// Prometheus-style text, and a human-readable table.
///
/// All three render a MetricsSnapshot, so a single consistent snapshot can
/// be exported through several formats (the CLI's --metrics flag, the
/// bench JSON telemetry sections, and interactive table dumps).

#include <ostream>
#include <string>

#include "obs/metrics.h"

namespace hgm {
namespace obs {

/// Writes the snapshot as a JSON object:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {name: {"count":..,"sum":..,"max":..,
///                          "buckets":[[upper,count],...]}, ...}}
void WriteJsonSnapshot(const MetricsSnapshot& snap, std::ostream& os,
                       int indent = 0);

/// Writes the snapshot in Prometheus text exposition format.  Metric
/// names are prefixed "hgm_" with non-alphanumerics mapped to '_';
/// histograms expand to cumulative _bucket{le="..."} series plus _sum and
/// _count.
void WritePrometheus(const MetricsSnapshot& snap, std::ostream& os);

/// Renders the snapshot as an aligned text table (via TablePrinter):
/// one row per counter/gauge, histograms as count/sum/max rows.
void PrintMetricsTable(const MetricsSnapshot& snap, std::ostream& os);

/// Prometheus-safe name: "oracle.raw_queries" -> "hgm_oracle_raw_queries".
std::string PrometheusName(const std::string& name);

}  // namespace obs
}  // namespace hgm
