#pragma once

/// \file metrics.h
/// \brief Process-wide metrics registry: named counters, gauges, and
/// log-bucketed histograms.
///
/// The paper's entire contribution is cost accounting — Theorem 10's exact
/// |Th| + |Bd-(Th)| query count, Corollary 13's 2^k*n*|MTh| bound, Theorem
/// 21's |MTh|*(|Bd-| + rank*width) bound — and this registry makes those
/// quantities continuously observable instead of scattered struct fields.
/// Every miner, oracle, transversal engine, and the thread pool charge
/// named metrics here; exporters (obs/export.h) snapshot them as JSON,
/// Prometheus text, or a human table, and obs/bound_report.h computes
/// observed-vs-theoretical ratios from the live values.
///
/// Design constraints, in order:
///  1. near-zero overhead when idle: every hot-path charge is gated on
///     MetricsOn(), a single relaxed atomic load, and resolves its metric
///     handle at most once (function-local static);
///  2. thread-safe and *exact* under concurrency: counters are sharded
///     across cache-line-padded atomic cells (one shard per thread, modulo
///     kMetricShards) so parallel oracle batches never contend on one line,
///     and reads sum the shards — modeled on audit_stats' process-wide
///     atomic tallies;
///  3. registration is lazy and lock-guarded (cold path only); handles
///     returned by the registry are stable for the process lifetime.

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace hgm {
namespace obs {

namespace internal {
/// The process-wide "metrics requested" flag behind MetricsOn().
extern std::atomic<bool> g_metrics_enabled;

/// Shard index of the calling thread (round-robin assigned at first use).
size_t ThisThreadShard();
}  // namespace internal

/// Counter shard count; threads map onto shards round-robin, so up to
/// kMetricShards threads increment without sharing a cache line.
inline constexpr size_t kMetricShards = 16;

/// True iff telemetry collection was requested (EnableMetrics).  All hot
/// paths gate their charges on this: one relaxed load when idle.
inline bool MetricsOn() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Turns metric collection on or off (off is the process default).
void EnableMetrics(bool on = true);

/// A named monotone counter, sharded per-thread to avoid contention on the
/// hot oracle path.  Value() sums the shards (read single-threaded after
/// the parallel region, like AtomicCounter).
class Counter {
 public:
  void Add(uint64_t d) {
    shards_[internal::ThisThreadShard()].v.fetch_add(
        d, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kMetricShards];
  std::string name_;
};

/// A named point-in-time value (last-write-wins; e.g. "|Bd-| of the most
/// recent levelwise run").
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::atomic<int64_t> v_{0};
  std::string name_;
};

/// A log-bucketed histogram over non-negative integer observations
/// (batch sizes, per-level candidate counts, span durations in
/// microseconds).  Bucket b >= 1 holds values in [2^(b-1), 2^b - 1];
/// bucket 0 holds the value 0.  Exact count/sum/max under concurrent
/// Observe() calls.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  // bit_width(uint64) + 1

  void Observe(uint64_t v) {
    buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }

  /// Count in bucket \p b (see class comment for the value range).
  uint64_t BucketCount(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket \p b: 0 for b = 0, else 2^b - 1.
  static uint64_t BucketUpperBound(size_t b) {
    if (b == 0) return 0;
    if (b >= 64) return ~uint64_t{0};
    return (uint64_t{1} << b) - 1;
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::string name_;
};

/// Point-in-time copy of one histogram, for exporters.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  /// (inclusive upper bound, count) for every nonempty bucket, ascending.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

/// Point-in-time copy of the whole registry, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Value of counter \p name, or \p fallback if never registered.
  uint64_t CounterValue(const std::string& name, uint64_t fallback = 0) const;
  /// Value of gauge \p name, or \p fallback if never registered.
  int64_t GaugeValue(const std::string& name, int64_t fallback = 0) const;
};

/// The process-wide metric namespace.  Get* registers on first use (cold,
/// mutex-guarded) and returns a stable reference; hot paths cache it in a
/// function-local static (see HGM_OBS_COUNT).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Copies every metric's current value, sorted by name.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (registrations persist).
  void Reset();

 private:
  MetricsRegistry() = default;

  /// Guards the name->metric maps (registration and iteration) only; the
  /// metric *values* are atomics mutated lock-free through the stable
  /// references Get* hands out, so Snapshot() under mu_ sees each value
  /// at-or-after the snapshot point without stalling writers.
  mutable Mutex mu_;
  // std::map: deterministic export order; unique_ptr: stable addresses.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      HGM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ HGM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      HGM_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace hgm

/// Charges \p delta to counter \p name iff metrics are on.  The registry
/// lookup runs at most once per call site (function-local static), so the
/// steady-state cost is one relaxed load + one sharded relaxed add.
#define HGM_OBS_COUNT(name, delta)                                        \
  do {                                                                    \
    if (hgm::obs::MetricsOn()) {                                          \
      static hgm::obs::Counter& hgm_obs_counter_ =                        \
          hgm::obs::MetricsRegistry::Global().GetCounter(name);           \
      hgm_obs_counter_.Add(static_cast<uint64_t>(delta));                 \
    }                                                                     \
  } while (0)

/// Records \p value into histogram \p name iff metrics are on.
#define HGM_OBS_OBSERVE(name, value)                                      \
  do {                                                                    \
    if (hgm::obs::MetricsOn()) {                                          \
      static hgm::obs::Histogram& hgm_obs_histogram_ =                    \
          hgm::obs::MetricsRegistry::Global().GetHistogram(name);         \
      hgm_obs_histogram_.Observe(static_cast<uint64_t>(value));           \
    }                                                                     \
  } while (0)

/// Sets gauge \p name to \p value iff metrics are on.
#define HGM_OBS_GAUGE_SET(name, value)                                    \
  do {                                                                    \
    if (hgm::obs::MetricsOn()) {                                          \
      static hgm::obs::Gauge& hgm_obs_gauge_ =                            \
          hgm::obs::MetricsRegistry::Global().GetGauge(name);             \
      hgm_obs_gauge_.Set(static_cast<int64_t>(value));                    \
    }                                                                     \
  } while (0)
