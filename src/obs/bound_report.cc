#include "obs/bound_report.h"

#include <cmath>

#include "common/table_printer.h"

namespace hgm {
namespace obs {

double BoundLine::Ratio() const {
  if (allowed == 0) return observed == 0 ? 0.0 : HUGE_VAL;
  return observed / allowed;
}

bool BoundLine::Holds() const {
  return exact ? observed == allowed : observed <= allowed;
}

bool BoundReport::AllHold() const {
  for (const BoundLine& l : lines_) {
    if (!l.Holds()) return false;
  }
  return true;
}

void BoundReport::Print(std::ostream& os) const {
  TablePrinter t({"bound", "expression", "observed", "allowed", "ratio",
                  "holds"});
  for (const BoundLine& l : lines_) {
    t.NewRow()
        .Add(l.bound)
        .Add(l.expression)
        .Add(l.observed, 0)
        .Add(l.allowed, 0)
        .Add(l.Ratio(), 4)
        .Add(l.Holds() ? (l.exact ? "exact" : "yes") : "VIOLATED");
  }
  t.Print(os);
}

void BoundReport::WriteJson(std::ostream& os, int indent) const {
  const std::string pad(static_cast<size_t>(indent), ' ');
  const std::string in1(static_cast<size_t>(indent) + 2, ' ');
  os << "[";
  for (size_t i = 0; i < lines_.size(); ++i) {
    const BoundLine& l = lines_[i];
    os << (i ? "," : "") << "\n"
       << in1 << "{\"bound\": \"" << l.bound << "\", \"expression\": \""
       << l.expression << "\", \"observed\": " << l.observed
       << ", \"allowed\": " << l.allowed << ", \"ratio\": " << l.Ratio()
       << ", \"holds\": " << (l.Holds() ? "true" : "false") << "}";
  }
  os << (lines_.empty() ? "" : "\n" + pad) << "]";
}

namespace {

double Pow2Capped(uint64_t k) {
  return k >= 1024 ? HUGE_VAL : std::pow(2.0, static_cast<double>(k));
}

}  // namespace

BoundReport LevelwiseBoundReport(const LevelwiseBoundInputs& in) {
  BoundReport report;
  report.Add({"Theorem 10", "|Th| + |Bd-|",
              static_cast<double>(in.queries),
              static_cast<double>(in.theory_size + in.negative_border_size),
              /*exact=*/true});
  report.Add({"Thm 12 / Cor 13", "2^rank * width * |MTh|",
              static_cast<double>(in.queries),
              Pow2Capped(in.rank) * static_cast<double>(in.width) *
                  static_cast<double>(in.positive_border_size),
              /*exact=*/false});
  report.Add({"Corollary 14", "width^rank * |MTh| (O() ref)",
              static_cast<double>(in.negative_border_size),
              std::pow(static_cast<double>(in.width),
                       static_cast<double>(in.rank)) *
                  static_cast<double>(in.positive_border_size),
              /*exact=*/false});
  return report;
}

BoundReport DualizeAdvanceBoundReport(const DualizeAdvanceBoundInputs& in) {
  BoundReport report;
  report.Add({"Lemma 20", "|Bd-| + 1 transversals/iter",
              static_cast<double>(in.max_enumerated_one_iteration),
              static_cast<double>(in.negative_border_size + 1),
              /*exact=*/false});
  report.Add({"Theorem 21", "|MTh| * (|Bd-| + rank*width)",
              static_cast<double>(in.queries),
              static_cast<double>(in.positive_border_size) *
                  (static_cast<double>(in.negative_border_size) +
                   static_cast<double>(in.rank) *
                       static_cast<double>(in.width)),
              /*exact=*/false});
  report.Add({"termination", "|MTh| + 1 iterations",
              static_cast<double>(in.iterations),
              static_cast<double>(in.positive_border_size + 1),
              /*exact=*/true});
  return report;
}

BoundReport PartitionBoundReport(const PartitionBoundInputs& in) {
  BoundReport report;
  report.Add({"Partition phase 2", "|Th| + |Bd-| full-pass sets",
              static_cast<double>(in.phase2_evaluations),
              static_cast<double>(in.theory_size + in.negative_border_size),
              /*exact=*/false});
  report.Add({"Partition recall", "|Th| <= candidate union",
              static_cast<double>(in.theory_size),
              static_cast<double>(in.candidate_union_size),
              /*exact=*/false});
  return report;
}

BoundReport LevelwiseBoundReportFromRegistry(const MetricsSnapshot& snap) {
  LevelwiseBoundInputs in;
  in.queries =
      static_cast<uint64_t>(snap.GaugeValue("levelwise.last_queries"));
  in.theory_size =
      static_cast<uint64_t>(snap.GaugeValue("levelwise.last_theory_size"));
  in.negative_border_size = static_cast<uint64_t>(
      snap.GaugeValue("levelwise.last_negative_border"));
  in.positive_border_size = static_cast<uint64_t>(
      snap.GaugeValue("levelwise.last_positive_border"));
  in.rank = static_cast<uint64_t>(snap.GaugeValue("levelwise.last_rank"));
  in.width = static_cast<uint64_t>(snap.GaugeValue("levelwise.last_width"));
  return LevelwiseBoundReport(in);
}

BoundReport DualizeAdvanceBoundReportFromRegistry(
    const MetricsSnapshot& snap) {
  DualizeAdvanceBoundInputs in;
  in.queries = static_cast<uint64_t>(snap.GaugeValue("da.last_queries"));
  in.positive_border_size =
      static_cast<uint64_t>(snap.GaugeValue("da.last_positive_border"));
  in.negative_border_size =
      static_cast<uint64_t>(snap.GaugeValue("da.last_negative_border"));
  in.rank = static_cast<uint64_t>(snap.GaugeValue("da.last_rank"));
  in.width = static_cast<uint64_t>(snap.GaugeValue("da.last_width"));
  in.iterations =
      static_cast<uint64_t>(snap.GaugeValue("da.last_iterations"));
  in.max_enumerated_one_iteration =
      static_cast<uint64_t>(snap.GaugeValue("da.last_max_enumerated"));
  return DualizeAdvanceBoundReport(in);
}

BoundReport PartitionBoundReportFromRegistry(const MetricsSnapshot& snap) {
  PartitionBoundInputs in;
  in.phase2_evaluations = static_cast<uint64_t>(
      snap.GaugeValue("partition.last_phase2_evaluations"));
  in.theory_size =
      static_cast<uint64_t>(snap.GaugeValue("partition.last_theory_size"));
  in.negative_border_size = static_cast<uint64_t>(
      snap.GaugeValue("partition.last_negative_border"));
  in.candidate_union_size = static_cast<uint64_t>(
      snap.GaugeValue("partition.last_candidate_union"));
  return PartitionBoundReport(in);
}

BoundReport StreamBoundReport(const StreamBoundInputs& in) {
  BoundReport report;
  // The repair decides exactly the boundary's Th ∪ Bd- plus ∅ — the same
  // population Theorem 10 prices for the batch miner — split between
  // fresh counts and reused maintained supports.
  report.Add({"Theorem 10 (stream)", "evals + reused == |Th| + |Bd-| + 1",
              static_cast<double>(in.evaluations + in.reused),
              static_cast<double>(in.theory_size +
                                  in.negative_border_size + 1),
              /*exact=*/true});
  report.Add({"Stream repair", "fresh evals <= |Th| + |Bd-| + 1",
              static_cast<double>(in.evaluations),
              static_cast<double>(in.theory_size +
                                  in.negative_border_size + 1),
              /*exact=*/false});
  return report;
}

BoundReport StreamBoundReportFromRegistry(const MetricsSnapshot& snap) {
  StreamBoundInputs in;
  in.evaluations =
      static_cast<uint64_t>(snap.GaugeValue("stream.last_evaluations"));
  in.reused = static_cast<uint64_t>(snap.GaugeValue("stream.last_reused"));
  in.theory_size =
      static_cast<uint64_t>(snap.GaugeValue("stream.last_theory_size"));
  in.negative_border_size = static_cast<uint64_t>(
      snap.GaugeValue("stream.last_negative_border"));
  return StreamBoundReport(in);
}

}  // namespace obs
}  // namespace hgm
