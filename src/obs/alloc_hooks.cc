/// \file alloc_hooks.cc
/// \brief Counting operator new/delete replacements — the opt-in half of
/// the allocation-telemetry seam (see obs/resource.h).
///
/// This TU is only compiled under -DHGMINE_ALLOC_TELEMETRY=ON: replacing
/// the global allocator taxes every allocation in the process, so plain
/// builds never pay for it.  Even when compiled in, the counters only
/// tick while EnableAllocationCounting(true) — three relaxed fetch_adds
/// per allocation, nothing else changes about allocation behavior.

#include <cstdlib>
#include <new>

#include "obs/resource.h"

namespace {

void CountAlloc(size_t size) {
  using namespace hgm::obs::internal;
  if (!g_alloc_counting.load(std::memory_order_relaxed)) return;
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
}

void CountFree() {
  using namespace hgm::obs::internal;
  if (!g_alloc_counting.load(std::memory_order_relaxed)) return;
  g_free_count.fetch_add(1, std::memory_order_relaxed);
}

struct HooksLinkedMarker {
  HooksLinkedMarker() {
    hgm::obs::internal::g_alloc_hooks_linked.store(
        true, std::memory_order_relaxed);
  }
};
HooksLinkedMarker g_marker;

}  // namespace

void* operator new(size_t size) {
  CountAlloc(size);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](size_t size) { return ::operator new(size); }

void* operator new(size_t size, const std::nothrow_t&) noexcept {
  CountAlloc(size);
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new[](size_t size, const std::nothrow_t& nt) noexcept {
  return ::operator new(size, nt);
}

void operator delete(void* p) noexcept {
  if (p != nullptr) CountFree();
  std::free(p);
}

void operator delete[](void* p) noexcept { ::operator delete(p); }

void operator delete(void* p, size_t) noexcept { ::operator delete(p); }

void operator delete[](void* p, size_t) noexcept { ::operator delete(p); }

void operator delete(void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
