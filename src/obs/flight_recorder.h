#pragma once

/// \file flight_recorder.h
/// \brief Crash-safe black box: a fixed-capacity lock-free ring of
/// structured events, dumpable from fatal paths.
///
/// The metrics registry answers "how much"; the tracer answers "how long".
/// Neither survives a crash: a `HGMINE_CHECK` failure or a fatal signal in
/// hour three of a long mining run leaves nothing but the abort message.
/// The flight recorder fills that gap.  Every structural event — phase
/// transitions, level advances, budget trips, shard retries/failovers,
/// audit violations, checkpoint saves/loads — is recorded into a
/// fixed-size ring that is:
///
///  * always on: you cannot enable a black box after the crash.  A
///    Record() is one relaxed fetch_add plus a ~80-byte POD store, and
///    events are structural (per level / per retry, never per query), so
///    the steady-state cost is unmeasurable;
///  * lock-free and allocation-free: Record() is safe from signal
///    handlers and from inside the check-failure path, where taking a
///    mutex or calling malloc could deadlock a wedged process;
///  * bounded: the newest `capacity()` events win; older ones are
///    overwritten in place, which is exactly the forensic contract ("the
///    last N things the miner did").
///
/// InstallCrashHandlers() arms three dump paths once a dump file is
/// configured with SetDumpPath():
///  1. the HGMINE_CHECK failure hook (common/check.h) — the check's
///     message becomes the final kCheckFailure event;
///  2. SIGSEGV/SIGABRT handlers using only async-signal-safe calls
///     (open/write/close with pre-formatted fixed-size buffers);
///  3. budget trips (common/run_budget.h) when EnableDumpOnTrip() is on —
///     a trip is not fatal, but a long-running service wants the
///     surrounding events persisted while they are still in the ring.
///
/// Concurrency note on wrap-around: writers claim slots with an atomic
/// sequence counter; two writers more than `capacity` events apart can
/// briefly race on one slot, and the crash dump tolerates the resulting
/// torn record (it is marked by a sequence mismatch and skipped).  The
/// ordered Snapshot() used by tests reads quiescent state.

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace hgm {
namespace obs {

/// What kind of structural event a ring slot holds.
enum class FlightEventType : uint8_t {
  kPhase = 0,       ///< a miner phase started (label = phase name)
  kLevel,           ///< levelwise/D&A advanced a level (a = level, b = |C|)
  kBudgetTrip,      ///< RunBudget tripped (label = stop reason)
  kShardRetry,      ///< partition shard retry (a = shard, b = attempt)
  kShardFailover,   ///< shard permanently failed past its retry cap
  kAuditViolation,  ///< paper-contract auditor fired (label = contract)
  kCheckFailure,    ///< HGMINE_CHECK failed (label = truncated message)
  kCheckpoint,      ///< checkpoint saved/loaded (label = "save"/"load")
  kSignal,          ///< fatal signal caught (a = signo)
  kMark,            ///< free-form application marker
};

/// Stable name for \p t ("phase", "budget_trip", ...).
const char* FlightEventTypeName(FlightEventType t);

/// One ring slot.  Fixed-size POD: filling one never allocates, so
/// Record() stays signal-safe.
struct FlightEvent {
  static constexpr size_t kLabelBytes = 48;

  uint64_t seq = 0;    ///< 1-based global order; 0 marks a never-written slot
  uint64_t ts_us = 0;  ///< microseconds since recorder construction
  uint32_t tid = 0;    ///< dense per-thread id (first-use assigned)
  FlightEventType type = FlightEventType::kMark;
  char label[kLabelBytes] = {};  ///< NUL-terminated, truncated, printable
  int64_t a = 0;  ///< small payload, meaning per type (level, shard, signo)
  int64_t b = 0;  ///< second payload (candidate count, attempt, ...)
};

/// The process-wide ring.  See file comment for the contract.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  static FlightRecorder& Global();

  /// Records one event.  Lock-free, allocation-free, async-signal-safe.
  /// Non-printable label bytes are mapped to '?' and long labels are
  /// truncated to FlightEvent::kLabelBytes - 1.
  void Record(FlightEventType type, const char* label, int64_t a = 0,
              int64_t b = 0);

  /// The surviving events, oldest first.  Torn slots (overwritten while
  /// being read) are skipped.  Not for use from signal handlers.
  std::vector<FlightEvent> Snapshot() const;

  /// Total events ever recorded (>= Snapshot().size()).
  uint64_t total_recorded() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }

  /// Re-sizes the ring and drops all buffered events.  NOT thread-safe
  /// against concurrent Record(): call during startup/configuration,
  /// before the run, like Tracer::Start().
  void SetCapacity(size_t capacity);

  /// Drops all buffered events (slots stay allocated).
  void Clear();

  /// Structured JSON dump: {"flight_recorder": {"total": N, "dropped": M,
  /// "events": [...]}}.
  void WriteJson(std::ostream& os) const;

  /// Async-signal-safe dump to an open file descriptor: same JSON shape,
  /// formatted with snprintf into stack buffers, emitted with write(2).
  void DumpToFd(int fd) const;

  /// Opens \p path (O_CREAT|O_TRUNC) and DumpToFd()s into it.  Returns
  /// false when the open fails.  Async-signal-safe.
  bool DumpToFile(const char* path) const;

  /// Configures the crash-dump destination (copied into a fixed buffer so
  /// the fatal paths never allocate).  Empty path disables dumping.
  void SetDumpPath(const std::string& path);
  const char* dump_path() const { return dump_path_; }

  /// When on, a RunBudget trip writes a dump to dump_path() (at most one
  /// dump per process unless re-armed; the fatal paths share the latch).
  void EnableDumpOnTrip(bool on) {
    dump_on_trip_.store(on, std::memory_order_relaxed);
  }
  bool dump_on_trip() const {
    return dump_on_trip_.load(std::memory_order_relaxed);
  }

  /// Dumps to dump_path() if configured and the once-latch is free.
  /// Returns true when a dump was written.  Async-signal-safe.
  bool DumpOnce(const char* why);

  /// Re-arms DumpOnce (tests; a resumed service run after a handled trip).
  void RearmDump() { dumped_.store(false, std::memory_order_relaxed); }

 private:
  FlightRecorder();

  std::vector<FlightEvent> slots_;
  size_t capacity_ = kDefaultCapacity;
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<bool> dump_on_trip_{false};
  std::atomic<bool> dumped_{false};
  char dump_path_[512] = {};
  int64_t origin_ns_ = 0;
};

/// Arms the crash paths: installs the HGMINE_CHECK failure hook and the
/// SIGSEGV/SIGABRT handlers (previous handlers are replaced; the default
/// action is restored and the signal re-raised after the dump, so cores
/// and exit codes are unchanged).  Idempotent.  A dump is only written
/// once a path is configured via FlightRecorder::SetDumpPath().
void InstallCrashHandlers();

/// Records a budget trip (called by BudgetTracker; exposed for tests).
void RecordBudgetTrip(const char* stop_reason, uint64_t queries);

}  // namespace obs
}  // namespace hgm
