#include "obs/metrics.h"

#include <algorithm>

namespace hgm {
namespace obs {

namespace internal {

std::atomic<bool> g_metrics_enabled{false};

size_t ThisThreadShard() {
  static std::atomic<size_t> next_shard{0};
  thread_local size_t shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace internal

void EnableMetrics(bool on) {
  internal::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name,
                                       uint64_t fallback) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return fallback;
}

int64_t MetricsSnapshot::GaugeValue(const std::string& name,
                                    int64_t fallback) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return fallback;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name))).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(new Histogram(name)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h->Count();
    hs.sum = h->Sum();
    hs.max = h->Max();
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      uint64_t c = h->BucketCount(b);
      if (c != 0) {
        hs.buckets.emplace_back(Histogram::BucketUpperBound(b), c);
      }
    }
    snap.histograms.emplace_back(name, std::move(hs));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace hgm
