#pragma once

/// \file trace.h
/// \brief Phase tracer emitting Chrome/Perfetto trace-event JSON.
///
/// Every structural phase of the miners opens a TraceSpan: each levelwise
/// level, each Dualize-and-Advance iteration, each transversal-engine
/// compute, each random-walk round, each thread-pool batch.  When tracing
/// is off (the process default) a span is one relaxed load in the
/// constructor and nothing else; when on, it records paired "B"/"E"
/// duration events with per-thread ids, which load directly in
/// chrome://tracing and ui.perfetto.dev.
///
/// Timestamps are microseconds on the steady clock relative to Start(),
/// so traces are immune to wall-clock steps and diffable across runs.

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace hgm {
namespace obs {

namespace internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// True iff span collection was requested (Tracer::Start).
inline bool TracingOn() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// One span argument: a named integer (counts, level numbers, sizes).
using TraceArg = std::pair<const char*, uint64_t>;

/// Aggregated wall time for one span name, computed by pairing each
/// thread's B/E events (PhaseTotals).  Self-time is not separated: a
/// nested span's duration also counts inside its parent, mirroring how
/// the spans render in Perfetto.
struct PhaseTotal {
  std::string name;
  uint64_t count = 0;     ///< completed spans
  uint64_t total_us = 0;  ///< summed span durations
};

/// The process-wide trace-event collector.
///
/// The buffer is bounded: once `capacity()` events are held, further
/// emissions are dropped (counted in num_dropped() and the
/// `obs.trace.dropped` registry counter) instead of growing without
/// limit — a long-lived service tracing for hours must not convert the
/// tracer into a memory leak.  Dropping loses the *newest* events, which
/// keeps every buffered "B" matched with its "E" where evicting old
/// events would unbalance spans.
class Tracer {
 public:
  /// ~100 bytes/event; the default bounds the buffer at tens of MB.
  static constexpr size_t kDefaultCapacity = 1u << 18;

  static Tracer& Global();

  /// Clears the buffer, re-zeroes the time origin, and starts collecting.
  void Start();

  /// Stops collecting; buffered events stay available for WriteJson.
  void Stop();

  /// Sets the buffer bound.  Takes effect for subsequent Emit()s; events
  /// already buffered are kept even if over the new bound.
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  /// Events rejected because the buffer was full (since Start()).
  uint64_t num_dropped() const;

  /// Aggregates buffered B/E pairs into per-name totals, sorted by name.
  /// Spans still open (B without E) are excluded.
  std::vector<PhaseTotal> PhaseTotals() const;

  /// Serializes the buffer as Chrome trace-event JSON (JSON-object form,
  /// {"traceEvents": [...]}).  Call after Stop(); spans still open on
  /// other threads would otherwise serialize unbalanced.
  void WriteJson(std::ostream& os) const;

  /// Buffered event count ("B" and "E" each count once).
  size_t num_events() const;

  /// Drops all buffered events.
  void Clear();

  /// Microseconds since Start() on the steady clock.
  uint64_t NowMicros() const;

  /// Appends one raw event; used by TraceSpan.  \p args_json is either
  /// empty or a JSON object body like "\"level\":3" (no braces).
  void Emit(char phase, const std::string& name, const char* category,
            uint64_t ts_us, const std::string& args_json);

 private:
  Tracer() = default;

  struct Event {
    char phase;  // 'B' or 'E'
    std::string name;
    const char* category;
    uint64_t ts_us;
    uint32_t tid;
    std::string args_json;
  };

  mutable Mutex mu_;
  std::vector<Event> events_ HGM_GUARDED_BY(mu_);
  size_t capacity_ HGM_GUARDED_BY(mu_) = kDefaultCapacity;
  uint64_t dropped_ HGM_GUARDED_BY(mu_) = 0;
  /// Time origin as steady-clock nanoseconds-since-clock-epoch.  Atomic,
  /// not guarded: NowMicros() runs on every span emission and must not
  /// take mu_, but a plain time_point here raced with Start() re-zeroing
  /// the origin while spans were emitting on other threads (caught by the
  /// annotation pass; regression-tested in obs_test).
  std::atomic<int64_t> origin_ns_{0};
};

/// RAII duration span.  Construction emits "B", destruction emits "E";
/// args attached at either point ride on the matching event.  A span
/// constructed while tracing is off stays inert even if tracing starts
/// before its destructor runs, so every "B" has its "E".
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, const char* category = "hgm",
                     std::initializer_list<TraceArg> args = {});
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an argument to the closing "E" event (e.g. a count that is
  /// only known once the phase finishes).
  void AddArg(const char* key, uint64_t value);

  bool active() const { return active_; }

 private:
  bool active_;
  std::string name_;
  const char* category_;
  std::string end_args_;
};

}  // namespace obs
}  // namespace hgm
