#pragma once

/// \file run_report.h
/// \brief The self-describing run artifact: a schema-versioned JSON
/// envelope capturing *what a whole run was*.
///
/// The registry answers "how much", the tracer "how long", the flight
/// recorder "what just happened" — a RunReport bundles all of them plus
/// the context needed to interpret the numbers later, on another machine,
/// against another revision:
///
///   * host fingerprint — nproc (the ROADMAP's "this box has 1 CPU"
///     caveat, machine-readable at last), page size, OS;
///   * build fingerprint — compiler, build type, git revision, audit
///     mode, sanitizer;
///   * dataset fingerprint — rows/items plus an FNV-1a digest of the
///     transaction contents, so two envelopes are comparable only when
///     they mined the same data;
///   * effective config, per-phase wall times (from the tracer), the
///     metrics snapshot, every BoundReport, the RunBudget outcome and
///     StopReason, checkpoint lineage, memory telemetry, and the flight
///     ring.
///
/// Emitters: `hgmine_cli --report=<path|->` and bench/bench_harness.h
/// (so every BENCH_*.json carries the same envelope, with bench-specific
/// tables under "payload").  scripts/bench_compare.py diffs two
/// envelopes; tests/run_report_test.cc round-trips one through
/// obs/json.h.
///
/// Schema versioning rules (also in DESIGN.md): the envelope carries
/// `"schema": "hgm.run_report"` and an integer `"schema_version"`.
/// Adding an optional key is backward compatible and does NOT bump the
/// version; renaming/removing a key, changing a type, or changing a
/// unit DOES.  Consumers must ignore unknown keys and refuse unknown
/// major versions.

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/bound_report.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace hgm {
namespace obs {

/// Incremental FNV-1a 64-bit hash, for dataset fingerprints.
class Fnv1a64 {
 public:
  void Update(const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001b3ull;
    }
  }
  void UpdateU64(uint64_t v) {
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<unsigned char>(v >> (8 * i));
    }
    Update(bytes, sizeof(bytes));
  }
  uint64_t Digest() const { return h_; }
  /// 16 lowercase hex digits.
  std::string HexDigest() const;

 private:
  uint64_t h_ = 0xcbf29ce484222325ull;
};

/// Where the run happened.
struct HostInfo {
  uint32_t nproc = 0;
  int64_t page_kb = 0;
  std::string os;      // uname sysname, e.g. "Linux"
  std::string kernel;  // uname release
};

/// What binary produced the run.
struct BuildInfo {
  std::string compiler;    // "gcc 12.2.0" / "clang 17.0.1"
  std::string build_type;  // CMAKE_BUILD_TYPE at configure time
  std::string git_rev;     // configure-time `git rev-parse --short HEAD`
  bool audit = false;      // -DHGMINE_AUDIT=ON
  std::string sanitizer;   // "none" / "address" / "thread"
};

/// What data the run mined.
struct DatasetInfo {
  std::string path;
  uint64_t rows = 0;
  uint64_t items = 0;
  std::string fingerprint;  // Fnv1a64 hex of the transaction contents
};

/// How the run's RunBudget resolved.
struct BudgetOutcome {
  std::string stop_reason = "completed";  // StopReasonName
  uint64_t queries = 0;                   // Is-interesting evaluations
  uint64_t deadline_ms = 0;               // configured caps (0 = off)
  uint64_t max_queries = 0;
};

/// Where the run's state came from / went to.
struct CheckpointLineage {
  std::string resumed_from;  // empty = fresh run
  std::string written_to;    // empty = no checkpoint persisted
  std::string kind;          // "apriori" / "partition" / ...
};

/// The envelope.  Populate what applies; optional sections render as
/// absent keys, never as misleading zeros.
struct RunReport {
  static constexpr int kSchemaVersion = 1;
  static constexpr const char* kSchemaName = "hgm.run_report";

  std::string kind;  // "cli" or "bench"
  std::string name;  // "hgmine_cli", "bench_partition", ...
  HostInfo host;
  BuildInfo build;
  std::vector<std::string> args;
  /// Effective config as (key, raw JSON value) pairs — use the AddConfig
  /// helpers so quoting stays correct.
  std::vector<std::pair<std::string, std::string>> config;
  std::optional<DatasetInfo> dataset;
  double wall_ms = 0;
  /// Per-phase totals pulled from the tracer (empty when tracing was off).
  std::vector<PhaseTotal> phases;
  MemoryStats memory;
  std::optional<AllocStats> alloc;  // only when counting was available
  std::optional<BudgetOutcome> budget;
  std::optional<CheckpointLineage> checkpoint;
  /// Named bound reports ("levelwise", "dualize_advance", "partition").
  std::vector<std::pair<std::string, BoundReport>> bounds;
  std::optional<MetricsSnapshot> metrics;
  /// Flight-ring snapshot at emission time (empty = omitted).
  std::vector<FlightEvent> flight;
  /// Raw JSON object *body* (members without braces) for bench-specific
  /// tables; rendered under "payload".
  std::string payload_members;

  void AddConfig(const std::string& key, uint64_t value);
  void AddConfig(const std::string& key, double value);
  void AddConfig(const std::string& key, bool value);
  void AddConfig(const std::string& key, const std::string& value);

  /// Serializes the envelope (one self-contained JSON object).
  void WriteJson(std::ostream& os) const;
};

/// Fills host/build from the running process (uname, sysconf, compile-
/// time defines).
HostInfo CollectHostInfo();
BuildInfo CollectBuildInfo();

/// Structural lint of an emitted envelope: parses \p json and checks the
/// required keys (schema, schema_version, kind, name, host.nproc,
/// build.git_rev, wall_ms) exist with the right types, and that
/// schema_version is one this binary understands.  The round-trip tests
/// and the obs smoke call this.
Status ValidateRunReportJson(const std::string& json);

/// JSON string escaping shared by the obs emitters.
std::string JsonEscapeString(const std::string& s);

}  // namespace obs
}  // namespace hgm
