#pragma once

/// \file resource.h
/// \brief Memory telemetry: RSS / peak-RSS gauges and opt-in allocation
/// counters.
///
/// The ROADMAP's out-of-core item leans on the "Quadratic Logspace"
/// result — frequent-set identification needs only small working memory —
/// but until now nothing in the repo could *measure* resident memory, so
/// the bounded-RSS claim was unobservable.  This module turns it into
/// numbers:
///
///  * ReadCurrentRssKb() samples `/proc/self/statm` (resident pages *
///    page size); ReadPeakRssKb() reads getrusage's ru_maxrss high-water
///    mark.  Both degrade to -1 on platforms without the facility.
///  * SampleMemory() is the sampling hook the miners call at phase/level
///    boundaries (gated on MetricsOn(), like every other charge): it sets
///    the `obs.mem.rss_kb` / `obs.mem.peak_rss_kb` gauges, tracks the
///    in-run high water in `obs.mem.rss_high_water_kb`, and counts
///    samples in `obs.mem.samples` — so run reports and bench envelopes
///    get a memory section from the same snapshot path as every other
///    metric.
///  * Allocation counters live behind a double seam: the counting
///    operator new/delete replacements are only compiled under
///    -DHGMINE_ALLOC_TELEMETRY=ON (obs/alloc_hooks.cc), and even then
///    only count while EnableAllocationCounting(true).  A plain build
///    reports AllocationCountingAvailable() == false and all-zero
///    AllocStats, so callers can surface "not measured" instead of a
///    misleading zero.

#include <atomic>
#include <cstdint>

namespace hgm {
namespace obs {

/// Point-in-time memory reading, as surfaced in reports.
struct MemoryStats {
  int64_t rss_kb = -1;       ///< current resident set, -1 if unreadable
  int64_t peak_rss_kb = -1;  ///< lifetime high water (ru_maxrss)
  int64_t vm_kb = -1;        ///< current virtual size, -1 if unreadable
};

/// Current resident set in KiB via /proc/self/statm, or -1.
int64_t ReadCurrentRssKb();

/// Lifetime peak resident set in KiB via getrusage, or -1.
int64_t ReadPeakRssKb();

/// Current virtual size in KiB via /proc/self/statm, or -1.
int64_t ReadVmKb();

/// One raw reading (no metrics side effects).
MemoryStats ReadMemory();

/// The sampling hook: reads memory and publishes it to the metrics
/// registry (gauges obs.mem.rss_kb / obs.mem.peak_rss_kb /
/// obs.mem.rss_high_water_kb, counter obs.mem.samples).  When metrics
/// are off this is one relaxed load and returns default (-1) stats — the
/// /proc read is never paid on an untelemetered run.
MemoryStats SampleMemory();

/// Process-wide allocation tallies (zero when the counting hooks are not
/// compiled in or not enabled).
struct AllocStats {
  uint64_t allocations = 0;
  uint64_t deallocations = 0;
  uint64_t bytes = 0;  ///< total bytes requested across all allocations
};

/// True when obs/alloc_hooks.cc is linked in (-DHGMINE_ALLOC_TELEMETRY=ON).
bool AllocationCountingAvailable();

/// Turns the (compiled-in) counting on or off; no-op when unavailable.
void EnableAllocationCounting(bool on);

AllocStats GlobalAllocStats();
void ResetAllocStats();

namespace internal {
/// Shared state between resource.cc and the optional alloc_hooks.cc TU.
extern std::atomic<bool> g_alloc_counting;
extern std::atomic<uint64_t> g_alloc_count;
extern std::atomic<uint64_t> g_free_count;
extern std::atomic<uint64_t> g_alloc_bytes;
/// Set by alloc_hooks.cc's initializer; resource.cc reads it to answer
/// AllocationCountingAvailable().
extern std::atomic<bool> g_alloc_hooks_linked;
}  // namespace internal

}  // namespace obs
}  // namespace hgm
