#pragma once

/// \file bound_report.h
/// \brief Observed-vs-theoretical cost ratios for the paper's bounds.
///
/// The paper's results are *query-count bounds*; this helper turns a run's
/// live telemetry into a table of "observed / allowed" ratios so bound
/// tightness is continuously measurable:
///
///   levelwise (Algorithm 9):
///     Theorem 10    queries == |Th| + |Bd-(Th)|             (exact)
///     Thm 12/Cor 13 queries <= 2^rank * width * |MTh|
///     Corollary 14  |Bd-|   <= width^rank * |MTh|           (O() reference)
///   Dualize and Advance (Algorithm 16):
///     Lemma 20      max transversals/iteration <= |Bd-| + 1
///     Theorem 21    queries <= |MTh| * (|Bd-| + rank*width)
///     termination   iterations == |MTh| + 1                 (exact)
///
/// Inputs are plain numbers, so the report layer stays below core/ in the
/// dependency order; *FromRegistry variants read the gauges that the
/// instrumented RunLevelwise / RunDualizeAdvance set on completion.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace hgm {
namespace obs {

/// One bound: observed value, allowed value, and whether the paper claims
/// equality (exact) or only an upper bound.
struct BoundLine {
  std::string bound;       // "Theorem 10"
  std::string expression;  // "|Th| + |Bd-|"
  double observed = 0;
  double allowed = 0;
  bool exact = false;

  /// observed / allowed (0 when allowed is 0 and observed is 0).
  double Ratio() const;
  /// Exact lines hold iff observed == allowed; bounds iff observed <=.
  bool Holds() const;
};

/// A set of bound lines with table / JSON rendering.
class BoundReport {
 public:
  void Add(BoundLine line) { lines_.push_back(std::move(line)); }
  const std::vector<BoundLine>& lines() const { return lines_; }

  /// True iff every line holds.
  bool AllHold() const;

  /// Aligned table via TablePrinter.
  void Print(std::ostream& os) const;

  /// JSON array of {bound, expression, observed, allowed, ratio, holds}.
  void WriteJson(std::ostream& os, int indent = 0) const;

 private:
  std::vector<BoundLine> lines_;
};

/// Inputs for the levelwise bounds.  `rank` is the size of the largest
/// maximal interesting set; `width` is the universe size n (width(L) for
/// languages representable as sets).
struct LevelwiseBoundInputs {
  uint64_t queries = 0;
  uint64_t theory_size = 0;
  uint64_t negative_border_size = 0;
  uint64_t positive_border_size = 0;
  uint64_t rank = 0;
  uint64_t width = 0;
};

BoundReport LevelwiseBoundReport(const LevelwiseBoundInputs& in);

/// Inputs for the Dualize-and-Advance bounds.
struct DualizeAdvanceBoundInputs {
  uint64_t queries = 0;
  uint64_t positive_border_size = 0;
  uint64_t negative_border_size = 0;
  uint64_t rank = 0;
  uint64_t width = 0;
  uint64_t iterations = 0;
  uint64_t max_enumerated_one_iteration = 0;
};

BoundReport DualizeAdvanceBoundReport(const DualizeAdvanceBoundInputs& in);

/// Inputs for the partition-mining phase-2 bounds.  The confirmation
/// pass walks the candidate union levelwise, so the sets it counts lie
/// in Th ∪ Bd-(Th) — the same Theorem 10 budget the levelwise algorithm
/// gets — and the recall line records how much of the union phase 1
/// over-generated.
struct PartitionBoundInputs {
  uint64_t phase2_evaluations = 0;
  uint64_t theory_size = 0;
  uint64_t negative_border_size = 0;
  uint64_t candidate_union_size = 0;
};

BoundReport PartitionBoundReport(const PartitionBoundInputs& in);

/// Inputs for the streaming-repair bounds.  A window boundary's repair
/// touches exactly the new Th ∪ Bd- (plus ∅), split between fresh
/// full-window counts (`evaluations`) and supports answered from the
/// incrementally maintained state (`reused`) — the split must sum to the
/// batch miner's Theorem-10 count, and the fresh share is the saving the
/// incremental engine exists for.
struct StreamBoundInputs {
  uint64_t evaluations = 0;
  uint64_t reused = 0;
  uint64_t theory_size = 0;
  uint64_t negative_border_size = 0;
};

BoundReport StreamBoundReport(const StreamBoundInputs& in);

/// Builds the levelwise report from the `levelwise.last_*` gauges the
/// instrumented RunLevelwise sets (requires metrics to have been on
/// during the run).
BoundReport LevelwiseBoundReportFromRegistry(const MetricsSnapshot& snap);

/// Builds the D&A report from the `da.last_*` gauges RunDualizeAdvance
/// sets.
BoundReport DualizeAdvanceBoundReportFromRegistry(
    const MetricsSnapshot& snap);

/// Builds the partition report from the `partition.last_*` gauges
/// MinePartitioned sets.
BoundReport PartitionBoundReportFromRegistry(const MetricsSnapshot& snap);

/// Builds the streaming report from the `stream.last_*` gauges
/// StreamMiner sets at each completed window boundary.
BoundReport StreamBoundReportFromRegistry(const MetricsSnapshot& snap);

}  // namespace obs
}  // namespace hgm
