#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <map>

#include "obs/metrics.h"

namespace hgm {
namespace obs {

namespace internal {

std::atomic<bool> g_trace_enabled{false};

/// Small dense thread ids for the "tid" field (thread::id is opaque).
uint32_t ThisThreadTraceId() {
  static std::atomic<uint32_t> next_tid{1};
  thread_local uint32_t tid =
      next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// Escapes a string for embedding in a JSON string literal.  Span names
/// are engine/phase identifiers, so this is mostly a no-op, but parser
/// well-formedness must not depend on that.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace internal

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // never dies
  return *tracer;
}

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void Tracer::Start() {
  {
    MutexLock lock(mu_);
    events_.clear();
    dropped_ = 0;
  }
  // The origin is atomic, not mutex-guarded: spans still draining from a
  // previous session may call NowMicros() concurrently with this store.
  // They timestamp against whichever origin they observe — harmless —
  // where a non-atomic reset here was a data race.
  origin_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  internal::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() {
  internal::g_trace_enabled.store(false, std::memory_order_relaxed);
}

uint64_t Tracer::NowMicros() const {
  int64_t delta_ns =
      SteadyNowNs() - origin_ns_.load(std::memory_order_relaxed);
  if (delta_ns < 0) delta_ns = 0;  // span straddling a Start() reset
  return static_cast<uint64_t>(delta_ns) / 1000;
}

void Tracer::Emit(char phase, const std::string& name, const char* category,
                  uint64_t ts_us, const std::string& args_json) {
  Event e;
  e.phase = phase;
  e.name = name;
  e.category = category;
  e.ts_us = ts_us;
  e.tid = internal::ThisThreadTraceId();
  e.args_json = args_json;
  MutexLock lock(mu_);
  if (events_.size() >= capacity_) {
    // Bounded buffer: drop the newest event (keeps buffered B/E pairs
    // balanced) and account for it.  The registry counter is charged
    // unconditionally — a tracing run that drops events must say so even
    // when the metrics flag is off.
    ++dropped_;
    static Counter& dropped_counter =
        MetricsRegistry::Global().GetCounter("obs.trace.dropped");
    dropped_counter.Increment();
    return;
  }
  events_.push_back(std::move(e));
}

void Tracer::SetCapacity(size_t capacity) {
  MutexLock lock(mu_);
  capacity_ = capacity;
}

size_t Tracer::capacity() const {
  MutexLock lock(mu_);
  return capacity_;
}

uint64_t Tracer::num_dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

std::vector<PhaseTotal> Tracer::PhaseTotals() const {
  // Pair each thread's B/E events with a per-(tid) stack — spans nest
  // properly within a thread, so an "E" always closes that thread's
  // innermost open "B" of the same name.
  std::map<uint32_t, std::vector<const Event*>> open_by_tid;
  std::map<std::string, PhaseTotal> totals;
  MutexLock lock(mu_);
  for (const Event& e : events_) {
    if (e.phase == 'B') {
      open_by_tid[e.tid].push_back(&e);
    } else if (e.phase == 'E') {
      auto& stack = open_by_tid[e.tid];
      if (stack.empty() || stack.back()->name != e.name) continue;
      const Event* b = stack.back();
      stack.pop_back();
      PhaseTotal& t = totals[e.name];
      t.name = e.name;
      t.count += 1;
      t.total_us += e.ts_us >= b->ts_us ? e.ts_us - b->ts_us : 0;
    }
  }
  std::vector<PhaseTotal> out;
  out.reserve(totals.size());
  for (auto& [name, t] : totals) out.push_back(std::move(t));
  return out;
}

size_t Tracer::num_events() const {
  MutexLock lock(mu_);
  return events_.size();
}

void Tracer::Clear() {
  MutexLock lock(mu_);
  events_.clear();
}

void Tracer::WriteJson(std::ostream& os) const {
  MutexLock lock(mu_);
  os << "{\"traceEvents\": [\n";
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    os << "  {\"name\": \"" << internal::JsonEscape(e.name)
       << "\", \"cat\": \"" << e.category << "\", \"ph\": \"" << e.phase
       << "\", \"ts\": " << e.ts_us << ", \"pid\": 1, \"tid\": " << e.tid;
    if (!e.args_json.empty()) {
      os << ", \"args\": {" << e.args_json << "}";
    }
    os << "}" << (i + 1 < events_.size() ? "," : "") << "\n";
  }
  os << "], \"displayTimeUnit\": \"ms\"}\n";
}

namespace {

void AppendArg(std::string* out, const char* key, uint64_t value) {
  if (!out->empty()) *out += ", ";
  *out += "\"";
  *out += key;
  *out += "\": ";
  *out += std::to_string(value);
}

}  // namespace

TraceSpan::TraceSpan(std::string name, const char* category,
                     std::initializer_list<TraceArg> args)
    : active_(TracingOn()),
      name_(active_ ? std::move(name) : std::string()),
      category_(category) {
  if (!active_) return;
  std::string begin_args;
  for (const TraceArg& a : args) AppendArg(&begin_args, a.first, a.second);
  Tracer& tracer = Tracer::Global();
  tracer.Emit('B', name_, category_, tracer.NowMicros(), begin_args);
}

void TraceSpan::AddArg(const char* key, uint64_t value) {
  if (!active_) return;
  AppendArg(&end_args_, key, value);
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  Tracer& tracer = Tracer::Global();
  tracer.Emit('E', name_, category_, tracer.NowMicros(), end_args_);
}

}  // namespace obs
}  // namespace hgm
