#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/check.h"

namespace hgm {
namespace obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Dense thread ids, separate from the tracer's (the recorder must not
/// depend on tracing having ever been enabled).
uint32_t ThisThreadFlightId() {
  static std::atomic<uint32_t> next_tid{1};
  thread_local uint32_t tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// write(2) a whole buffer, retrying on short writes.  Signal-safe.
void WriteAll(int fd, const char* buf, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, buf, n);
    if (w <= 0) return;  // best effort: a failing dump must not recurse
    buf += w;
    n -= static_cast<size_t>(w);
  }
}

void WriteStr(int fd, const char* s) { WriteAll(fd, s, std::strlen(s)); }

}  // namespace

const char* FlightEventTypeName(FlightEventType t) {
  switch (t) {
    case FlightEventType::kPhase:
      return "phase";
    case FlightEventType::kLevel:
      return "level";
    case FlightEventType::kBudgetTrip:
      return "budget_trip";
    case FlightEventType::kShardRetry:
      return "shard_retry";
    case FlightEventType::kShardFailover:
      return "shard_failover";
    case FlightEventType::kAuditViolation:
      return "audit_violation";
    case FlightEventType::kCheckFailure:
      return "check_failure";
    case FlightEventType::kCheckpoint:
      return "checkpoint";
    case FlightEventType::kSignal:
      return "signal";
    case FlightEventType::kMark:
      return "mark";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder()
    : slots_(kDefaultCapacity), origin_ns_(SteadyNowNs()) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never dies
  return *recorder;
}

void FlightRecorder::Record(FlightEventType type, const char* label,
                            int64_t a, int64_t b) {
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  FlightEvent& e = slots_[seq % capacity_];
  e.seq = 0;  // mark in-progress so a concurrent dump skips the torn slot
  e.ts_us = static_cast<uint64_t>(SteadyNowNs() - origin_ns_) / 1000;
  e.tid = ThisThreadFlightId();
  e.type = type;
  e.a = a;
  e.b = b;
  size_t i = 0;
  if (label != nullptr) {
    for (; i < FlightEvent::kLabelBytes - 1 && label[i] != '\0'; ++i) {
      // Labels land verbatim in hand-formatted JSON dumps: keep them
      // printable ASCII so the signal-safe writer needs no escaping.
      char c = label[i];
      e.label[i] = (c < 0x20 || c == '"' || c == '\\') ? '?' : c;
    }
  }
  e.label[i] = '\0';
  e.seq = seq + 1;  // publish; seq 0 means "never completed"
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  const uint64_t total = next_seq_.load(std::memory_order_relaxed);
  const uint64_t kept = total < capacity_ ? total : capacity_;
  std::vector<FlightEvent> out;
  out.reserve(kept);
  for (uint64_t s = total - kept; s < total; ++s) {
    const FlightEvent& e = slots_[s % capacity_];
    if (e.seq == s + 1) out.push_back(e);  // skip torn/overwritten slots
  }
  return out;
}

void FlightRecorder::SetCapacity(size_t capacity) {
  HGMINE_CHECK(capacity > 0) << "flight recorder capacity must be >= 1";
  capacity_ = capacity;
  slots_.assign(capacity_, FlightEvent{});
  next_seq_.store(0, std::memory_order_relaxed);
}

void FlightRecorder::Clear() {
  slots_.assign(capacity_, FlightEvent{});
  next_seq_.store(0, std::memory_order_relaxed);
}

void FlightRecorder::WriteJson(std::ostream& os) const {
  std::vector<FlightEvent> events = Snapshot();
  const uint64_t total = total_recorded();
  const uint64_t dropped = total > events.size() ? total - events.size() : 0;
  os << "{\"flight_recorder\": {\"capacity\": " << capacity_
     << ", \"total\": " << total << ", \"dropped\": " << dropped
     << ", \"events\": [\n";
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    os << "  {\"seq\": " << e.seq << ", \"ts_us\": " << e.ts_us
       << ", \"tid\": " << e.tid << ", \"type\": \""
       << FlightEventTypeName(e.type) << "\", \"label\": \"" << e.label
       << "\", \"a\": " << e.a << ", \"b\": " << e.b << "}"
       << (i + 1 < events.size() ? "," : "") << "\n";
  }
  os << "]}}\n";
}

void FlightRecorder::DumpToFd(int fd) const {
  // Mirrors WriteJson but uses only snprintf into stack buffers plus
  // write(2): safe from the SIGSEGV/SIGABRT handlers and the check hook.
  char buf[256];
  const uint64_t total = next_seq_.load(std::memory_order_relaxed);
  const uint64_t kept = total < capacity_ ? total : capacity_;
  std::snprintf(buf, sizeof(buf),
                "{\"flight_recorder\": {\"capacity\": %llu, \"total\": "
                "%llu, \"dropped\": %llu, \"events\": [\n",
                static_cast<unsigned long long>(capacity_),
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(total - kept));
  WriteStr(fd, buf);
  bool first = true;
  for (uint64_t s = total - kept; s < total; ++s) {
    const FlightEvent& e = slots_[s % capacity_];
    if (e.seq != s + 1) continue;  // torn slot
    std::snprintf(buf, sizeof(buf),
                  "%s  {\"seq\": %llu, \"ts_us\": %llu, \"tid\": %u, "
                  "\"type\": \"%s\", \"label\": \"%s\", \"a\": %lld, "
                  "\"b\": %lld}",
                  first ? "" : ",\n", static_cast<unsigned long long>(e.seq),
                  static_cast<unsigned long long>(e.ts_us), e.tid,
                  FlightEventTypeName(e.type), e.label,
                  static_cast<long long>(e.a), static_cast<long long>(e.b));
    WriteStr(fd, buf);
    first = false;
  }
  WriteStr(fd, "\n]}}\n");
}

bool FlightRecorder::DumpToFile(const char* path) const {
  int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  DumpToFd(fd);
  ::close(fd);
  return true;
}

void FlightRecorder::SetDumpPath(const std::string& path) {
  size_t n = path.size() < sizeof(dump_path_) - 1 ? path.size()
                                                  : sizeof(dump_path_) - 1;
  std::memcpy(dump_path_, path.data(), n);
  dump_path_[n] = '\0';
}

bool FlightRecorder::DumpOnce(const char* why) {
  if (dump_path_[0] == '\0') return false;
  bool expected = false;
  if (!dumped_.compare_exchange_strong(expected, true,
                                       std::memory_order_relaxed)) {
    return false;  // a fatal path already dumped; keep its snapshot
  }
  if (why != nullptr) {
    // The reason rides in the ring itself, so the dump is self-describing.
    Record(FlightEventType::kMark, why);
  }
  return DumpToFile(dump_path_);
}

namespace {

void CrashSignalHandler(int sig) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Record(FlightEventType::kSignal,
            sig == SIGSEGV ? "SIGSEGV"
                           : (sig == SIGABRT ? "SIGABRT" : "signal"),
            sig);
  fr.DumpOnce(nullptr);
  // Restore the default action and re-raise so exit codes and cores are
  // exactly what they would have been without the black box.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void CheckFailureDump(const char* message) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Record(FlightEventType::kCheckFailure, message);
  fr.DumpOnce(nullptr);
}

}  // namespace

void InstallCrashHandlers() {
  hgm::internal::SetCheckFailureHook(&CheckFailureDump);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &CrashSignalHandler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
}

void RecordBudgetTrip(const char* stop_reason, uint64_t queries) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Record(FlightEventType::kBudgetTrip, stop_reason,
            static_cast<int64_t>(queries));
  if (fr.dump_on_trip()) fr.DumpOnce("budget_trip_dump");
}

}  // namespace obs
}  // namespace hgm
