#include "obs/run_report.h"

#include <cstdio>
#include <sstream>
#include <thread>

#include "obs/export.h"
#include "obs/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#include <unistd.h>
#define HGMINE_HAVE_UNAME 1
#endif

namespace hgm {
namespace obs {

std::string Fnv1a64::HexDigest() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h_));
  return std::string(buf);
}

std::string JsonEscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

HostInfo CollectHostInfo() {
  HostInfo h;
  h.nproc = std::thread::hardware_concurrency();
#if defined(HGMINE_HAVE_UNAME)
  h.page_kb = ::sysconf(_SC_PAGESIZE) / 1024;
  struct utsname un;
  if (::uname(&un) == 0) {
    h.os = un.sysname;
    h.kernel = un.release;
  }
#else
  h.page_kb = 4;
  h.os = "unknown";
#endif
  return h;
}

BuildInfo CollectBuildInfo() {
  BuildInfo b;
#if defined(__clang__)
  b.compiler = "clang " + std::to_string(__clang_major__) + "." +
               std::to_string(__clang_minor__) + "." +
               std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  b.compiler = "gcc " + std::to_string(__GNUC__) + "." +
               std::to_string(__GNUC_MINOR__) + "." +
               std::to_string(__GNUC_PATCHLEVEL__);
#else
  b.compiler = "unknown";
#endif
#if defined(HGMINE_BUILD_TYPE)
  b.build_type = HGMINE_BUILD_TYPE;
#else
  b.build_type = "unknown";
#endif
#if defined(HGMINE_GIT_REV)
  b.git_rev = HGMINE_GIT_REV;
#else
  b.git_rev = "unknown";
#endif
#if defined(HGMINE_AUDIT)
  b.audit = true;
#endif
#if defined(__SANITIZE_ADDRESS__)
  b.sanitizer = "address";
#elif defined(__SANITIZE_THREAD__)
  b.sanitizer = "thread";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  b.sanitizer = "address";
#elif __has_feature(thread_sanitizer)
  b.sanitizer = "thread";
#endif
#endif
  if (b.sanitizer.empty()) b.sanitizer = "none";
  return b;
}

void RunReport::AddConfig(const std::string& key, uint64_t value) {
  config.emplace_back(key, std::to_string(value));
}

void RunReport::AddConfig(const std::string& key, double value) {
  std::ostringstream os;
  os << value;
  config.emplace_back(key, os.str());
}

void RunReport::AddConfig(const std::string& key, bool value) {
  config.emplace_back(key, value ? "true" : "false");
}

void RunReport::AddConfig(const std::string& key, const std::string& value) {
  config.emplace_back(key, "\"" + JsonEscapeString(value) + "\"");
}

void RunReport::WriteJson(std::ostream& os) const {
  os << "{\n";
  os << "  \"schema\": \"" << kSchemaName << "\",\n";
  os << "  \"schema_version\": " << kSchemaVersion << ",\n";
  os << "  \"kind\": \"" << JsonEscapeString(kind) << "\",\n";
  os << "  \"name\": \"" << JsonEscapeString(name) << "\",\n";
  os << "  \"host\": {\"nproc\": " << host.nproc
     << ", \"page_kb\": " << host.page_kb << ", \"os\": \""
     << JsonEscapeString(host.os) << "\", \"kernel\": \""
     << JsonEscapeString(host.kernel) << "\"},\n";
  os << "  \"build\": {\"compiler\": \"" << JsonEscapeString(build.compiler)
     << "\", \"build_type\": \"" << JsonEscapeString(build.build_type)
     << "\", \"git_rev\": \"" << JsonEscapeString(build.git_rev)
     << "\", \"audit\": " << (build.audit ? "true" : "false")
     << ", \"sanitizer\": \"" << JsonEscapeString(build.sanitizer)
     << "\"},\n";
  os << "  \"args\": [";
  for (size_t i = 0; i < args.size(); ++i) {
    os << (i > 0 ? ", " : "") << "\"" << JsonEscapeString(args[i]) << "\"";
  }
  os << "],\n";
  if (!config.empty()) {
    os << "  \"config\": {";
    for (size_t i = 0; i < config.size(); ++i) {
      os << (i > 0 ? ", " : "") << "\"" << JsonEscapeString(config[i].first)
         << "\": " << config[i].second;
    }
    os << "},\n";
  }
  if (dataset) {
    os << "  \"dataset\": {\"path\": \"" << JsonEscapeString(dataset->path)
       << "\", \"rows\": " << dataset->rows
       << ", \"items\": " << dataset->items << ", \"fingerprint\": \""
       << JsonEscapeString(dataset->fingerprint) << "\"},\n";
  }
  os << "  \"wall_ms\": " << wall_ms << ",\n";
  if (!phases.empty()) {
    os << "  \"phases\": [\n";
    for (size_t i = 0; i < phases.size(); ++i) {
      os << "    {\"name\": \"" << JsonEscapeString(phases[i].name)
         << "\", \"count\": " << phases[i].count
         << ", \"total_us\": " << phases[i].total_us << "}"
         << (i + 1 < phases.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
  }
  os << "  \"memory\": {\"rss_kb\": " << memory.rss_kb
     << ", \"peak_rss_kb\": " << memory.peak_rss_kb
     << ", \"vm_kb\": " << memory.vm_kb;
  if (alloc) {
    os << ", \"alloc\": {\"allocations\": " << alloc->allocations
       << ", \"deallocations\": " << alloc->deallocations
       << ", \"bytes\": " << alloc->bytes << "}";
  }
  os << "},\n";
  if (budget) {
    os << "  \"budget\": {\"stop_reason\": \""
       << JsonEscapeString(budget->stop_reason)
       << "\", \"queries\": " << budget->queries
       << ", \"deadline_ms\": " << budget->deadline_ms
       << ", \"max_queries\": " << budget->max_queries << "},\n";
  }
  if (checkpoint) {
    os << "  \"checkpoint\": {\"resumed_from\": \""
       << JsonEscapeString(checkpoint->resumed_from)
       << "\", \"written_to\": \""
       << JsonEscapeString(checkpoint->written_to) << "\", \"kind\": \""
       << JsonEscapeString(checkpoint->kind) << "\"},\n";
  }
  if (!bounds.empty()) {
    os << "  \"bounds\": {";
    for (size_t i = 0; i < bounds.size(); ++i) {
      os << (i > 0 ? ",\n    " : "\n    ") << "\""
         << JsonEscapeString(bounds[i].first) << "\": ";
      bounds[i].second.WriteJson(os, 4);
    }
    os << "\n  },\n";
  }
  if (!flight.empty()) {
    os << "  \"flight\": [\n";
    for (size_t i = 0; i < flight.size(); ++i) {
      const FlightEvent& e = flight[i];
      os << "    {\"seq\": " << e.seq << ", \"ts_us\": " << e.ts_us
         << ", \"tid\": " << e.tid << ", \"type\": \""
         << FlightEventTypeName(e.type) << "\", \"label\": \"" << e.label
         << "\", \"a\": " << e.a << ", \"b\": " << e.b << "}"
         << (i + 1 < flight.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
  }
  if (metrics) {
    os << "  \"metrics\": ";
    WriteJsonSnapshot(*metrics, os, 2);
    os << ",\n";
  }
  os << "  \"payload\": {";
  if (!payload_members.empty()) os << payload_members;
  os << "}\n}\n";
}

Status ValidateRunReportJson(const std::string& json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return Status::InvalidArgument("run report: root is not an object");
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->AsString() != RunReport::kSchemaName) {
    return Status::InvalidArgument("run report: missing/wrong \"schema\"");
  }
  const JsonValue* version = root.Find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return Status::InvalidArgument(
        "run report: missing \"schema_version\"");
  }
  if (version->AsInt() > RunReport::kSchemaVersion || version->AsInt() < 1) {
    return Status::InvalidArgument(
        "run report: unsupported schema_version " +
        std::to_string(version->AsInt()));
  }
  for (const char* key : {"kind", "name"}) {
    const JsonValue* v = root.Find(key);
    if (v == nullptr || !v->is_string()) {
      return Status::InvalidArgument(
          std::string("run report: missing string \"") + key + "\"");
    }
  }
  const JsonValue* host = root.Find("host");
  if (host == nullptr || !host->is_object() ||
      host->Find("nproc") == nullptr) {
    return Status::InvalidArgument("run report: missing host.nproc");
  }
  const JsonValue* build = root.Find("build");
  if (build == nullptr || !build->is_object() ||
      build->Find("git_rev") == nullptr) {
    return Status::InvalidArgument("run report: missing build.git_rev");
  }
  const JsonValue* wall = root.Find("wall_ms");
  if (wall == nullptr || !wall->is_number()) {
    return Status::InvalidArgument("run report: missing numeric wall_ms");
  }
  const JsonValue* payload = root.Find("payload");
  if (payload == nullptr || !payload->is_object()) {
    return Status::InvalidArgument("run report: missing object payload");
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace hgm
