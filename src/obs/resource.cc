#include "obs/resource.h"

#include <cinttypes>
#include <cstdio>

#include "obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define HGMINE_HAVE_RUSAGE 1
#endif

namespace hgm {
namespace obs {

namespace internal {
std::atomic<bool> g_alloc_counting{false};
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_free_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};
std::atomic<bool> g_alloc_hooks_linked{false};
}  // namespace internal

namespace {

/// Reads /proc/self/statm: "size resident shared text lib data dt", in
/// pages.  Returns false off-Linux or when /proc is unavailable.
bool ReadStatmPages(int64_t* vm_pages, int64_t* rss_pages) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return false;
  long long vm = 0, rss = 0;
  int got = std::fscanf(f, "%lld %lld", &vm, &rss);
  std::fclose(f);
  if (got != 2) return false;
  *vm_pages = vm;
  *rss_pages = rss;
  return true;
#else
  (void)vm_pages;
  (void)rss_pages;
  return false;
#endif
}

int64_t PageKb() {
#if defined(HGMINE_HAVE_RUSAGE)
  static const int64_t page_kb = ::sysconf(_SC_PAGESIZE) / 1024;
  return page_kb;
#else
  return 4;
#endif
}

}  // namespace

int64_t ReadCurrentRssKb() {
  int64_t vm = 0, rss = 0;
  if (!ReadStatmPages(&vm, &rss)) return -1;
  return rss * PageKb();
}

int64_t ReadVmKb() {
  int64_t vm = 0, rss = 0;
  if (!ReadStatmPages(&vm, &rss)) return -1;
  return vm * PageKb();
}

int64_t ReadPeakRssKb() {
#if defined(HGMINE_HAVE_RUSAGE)
  struct rusage ru;
  if (::getrusage(RUSAGE_SELF, &ru) != 0) return -1;
#if defined(__APPLE__)
  return ru.ru_maxrss / 1024;  // bytes on macOS
#else
  return ru.ru_maxrss;  // KiB on Linux
#endif
#else
  return -1;
#endif
}

MemoryStats ReadMemory() {
  MemoryStats m;
  m.rss_kb = ReadCurrentRssKb();
  m.peak_rss_kb = ReadPeakRssKb();
  m.vm_kb = ReadVmKb();
  return m;
}

MemoryStats SampleMemory() {
  if (!MetricsOn()) return MemoryStats{};  // one relaxed load when idle
  MemoryStats m = ReadMemory();
  static Gauge& rss = MetricsRegistry::Global().GetGauge("obs.mem.rss_kb");
  static Gauge& peak =
      MetricsRegistry::Global().GetGauge("obs.mem.peak_rss_kb");
  static Gauge& high =
      MetricsRegistry::Global().GetGauge("obs.mem.rss_high_water_kb");
  static Counter& samples =
      MetricsRegistry::Global().GetCounter("obs.mem.samples");
  if (m.rss_kb >= 0) {
    rss.Set(m.rss_kb);
    // Last-write-wins is fine for the high water: samples are taken at
    // phase boundaries on the driver thread, not concurrently.
    if (m.rss_kb > high.Value()) high.Set(m.rss_kb);
  }
  if (m.peak_rss_kb >= 0) peak.Set(m.peak_rss_kb);
  samples.Increment();
  return m;
}

bool AllocationCountingAvailable() {
  return internal::g_alloc_hooks_linked.load(std::memory_order_relaxed);
}

void EnableAllocationCounting(bool on) {
  internal::g_alloc_counting.store(on && AllocationCountingAvailable(),
                                   std::memory_order_relaxed);
}

AllocStats GlobalAllocStats() {
  AllocStats s;
  s.allocations = internal::g_alloc_count.load(std::memory_order_relaxed);
  s.deallocations = internal::g_free_count.load(std::memory_order_relaxed);
  s.bytes = internal::g_alloc_bytes.load(std::memory_order_relaxed);
  return s;
}

void ResetAllocStats() {
  internal::g_alloc_count.store(0, std::memory_order_relaxed);
  internal::g_free_count.store(0, std::memory_order_relaxed);
  internal::g_alloc_bytes.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace hgm
