#pragma once

/// \file protocol.h
/// \brief The hgmine_serve wire protocol: line-delimited JSON.
///
/// The paper's query-bounded mining model (Theorems 10/12/21) assumes a
/// caller issuing many Is-interesting-style queries against warm state —
/// the shape of a resident service.  The protocol is deliberately dumb:
/// one JSON object per line in, one JSON object per line out, matched by
/// a client-chosen `id` (responses may come back out of order — workers
/// drain a shared queue).  The same framing runs over a stdin/stdout
/// pair or a TCP connection; nothing here touches a socket.
///
/// Requests (fields beyond `op`/`id` per operation):
///
///   {"op":"ping","id":1}
///   {"op":"open","id":2,"session":"s","rows":[[0,1],[1,2]],"items":3}
///   {"op":"open","id":2,"session":"s","path":"/data/t.basket"}
///   {"op":"open","id":2,"session":"s","items":4,
///    "stream":{"min_support":2,"window":4,"slide":2}}
///   {"op":"push","id":3,"session":"s","rows":[[0,1],[2,3]]}
///   {"op":"mine","id":4,"session":"s","min_support":2,
///    "shards":2,"deadline_ms":50,"full":true}
///   {"op":"support","id":5,"session":"s","itemset":[0,2]}
///   {"op":"rules","id":6,"session":"s","min_support":2,"min_conf":0.6}
///   {"op":"border","id":7,"session":"s","min_support":2}
///   {"op":"stats","id":8}            (control op: never queued or shed)
///   {"op":"scrape","id":9}           (Prometheus text over the socket)
///   {"op":"checkpoint","id":10}      (force-checkpoint every session)
///   {"op":"close","id":11,"session":"s"}
///   {"op":"shutdown","id":12}        (graceful drain)
///   {"op":"sleep","id":13,"ms":500}  (test-only; --enable-test-ops)
///
/// Responses: `{"id":N,"ok":true,...}` on success.  A degraded success —
/// a budget trip or shard failure turned into a certified partial answer
/// per the PartialTheory contract — adds `"degraded":true` and a
/// `"stop_reason"`.  Failures are `{"id":N,"ok":false,"code":"...",
/// "error":"..."}`; a load-shed adds `"retry_after_ms"` so clients can
/// back off instead of hammering an overloaded server (the typed
/// Unavailable the admission controller promises).
///
/// Parsing is hardened like every other external surface: byte/row/item
/// caps,
/// strict types, unknown ops rejected — arbitrary bytes yield a Status,
/// never UB.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "common/status.h"
#include "mining/apriori.h"
#include "obs/json.h"

namespace hgm {
namespace serve {

/// Parser ceilings for one request line.
inline constexpr size_t kMaxRequestBytes = size_t{1} << 20;
inline constexpr size_t kMaxRowsPerRequest = size_t{1} << 16;
inline constexpr size_t kMaxDeclaredItems = size_t{1} << 20;
inline constexpr size_t kMaxSessionNameLength = 64;

/// Every operation the server understands.
enum class Op {
  kPing,
  kOpen,
  kPush,
  kMine,
  kSupport,
  kRules,
  kBorder,
  kStats,
  kScrape,
  kCheckpoint,
  kClose,
  kShutdown,
  kSleep,  // test-only, gated by ServerConfig::enable_test_ops
};

const char* OpName(Op op);

/// Stream-session parameters carried by an `open` request.
struct StreamSpec {
  size_t min_support = 0;
  size_t window_rows = 0;
  size_t slide_rows = 0;  // 0 = tumbling (slide == window)
};

/// One parsed request line.
struct Request {
  Op op = Op::kPing;
  uint64_t id = 0;
  std::string session;
  std::string path;                      // open: dataset file
  size_t num_items = 0;                  // open: declared universe
  std::vector<std::vector<size_t>> rows; // open/push: inline rows
  std::optional<StreamSpec> stream;      // open: engaged = stream session
  size_t min_support = 0;                // mine/rules/border
  size_t shards = 0;                     // mine: 0 = single-db Apriori
  double min_conf = 0.5;                 // rules
  std::vector<size_t> itemset;           // support
  uint64_t deadline_ms = 0;              // client deadline (0 = none)
  bool full = false;                     // mine/border: include full sets
  uint64_t sleep_ms = 0;                 // sleep
  /// Seeded transient shard faults for mine (test/chaos surface, mirrors
  /// hgmine_cli --chaos-seed); engaged only when the request set it.
  std::optional<uint64_t> chaos_seed;
  double chaos_rate = 0.4;
  double chaos_permanent_rate = 0.0;
};

/// Parses one request line with full validation; every failure names the
/// offending field.
Result<Request> ParseRequest(const std::string& line);

// ---- Response building -------------------------------------------------

/// `[i0,i1,...]` — an itemset as a JSON array of item indices.
obs::JsonValue ItemsetToJson(const Bitset& set);

/// `{"id":N,"ok":true,<fields...>}` as one line (no trailing newline).
std::string OkResponse(uint64_t id,
                       std::vector<std::pair<std::string, obs::JsonValue>>
                           fields);

/// `{"id":N,"ok":false,"code":...,"error":...[,"retry_after_ms":M]}`.
/// retry_after_ms renders only when nonzero (sheds carry it, plain
/// errors do not).
std::string ErrorResponse(uint64_t id, const Status& status,
                          uint64_t retry_after_ms = 0);

/// Machine-readable token for a StatusCode ("unavailable", "not_found",
/// ...) — the `code` field of error responses.
const char* StatusCodeToken(StatusCode code);

/// FNV-1a-64 fingerprint (16 hex digits) of a mined answer in canonical
/// order: every frequent set's (size, words, support), then the maximal
/// family, then Bd-.  Two answers are bit-identical iff their
/// fingerprints match — the chaos drivers verify non-shed responses
/// against batch re-mining through this without shipping whole theories
/// over the wire.
std::string TheoryFingerprint(const std::vector<FrequentItemset>& frequent,
                              const std::vector<Bitset>& maximal,
                              const std::vector<Bitset>& negative_border);

}  // namespace serve
}  // namespace hgm
