#include "serve/protocol.h"

#include <algorithm>
#include <cmath>

#include "obs/run_report.h"

namespace hgm {
namespace serve {

namespace {

using obs::JsonValue;

/// True when the double carried by a JSON number is an exact non-negative
/// integer no larger than \p max.
bool AsIndex(const JsonValue& v, uint64_t max, uint64_t* out) {
  if (!v.is_number()) return false;
  const double d = v.AsNumber();
  if (!(d >= 0) || d != std::floor(d) || d > 9e15) return false;
  const uint64_t u = static_cast<uint64_t>(d);
  if (u > max) return false;
  *out = u;
  return true;
}

Status BadField(const std::string& field, const std::string& why) {
  return Status::InvalidArgument("request field '" + field + "': " + why);
}

/// Reads an optional unsigned field, leaving *out untouched when absent.
Status ReadU64(const JsonValue& obj, const std::string& key, uint64_t max,
               uint64_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  uint64_t u = 0;
  if (!AsIndex(*v, max, &u)) {
    return BadField(key, "expected an integer in [0, " + std::to_string(max) +
                             "]");
  }
  *out = u;
  return Status::OK();
}

/// Reads a `"rows":[[i,...],...]` member into \p rows (indices validated
/// against the caps here; range-vs-universe is the session's job since
/// `push` does not re-declare the item count).
Status ReadRows(const JsonValue& obj,
                std::vector<std::vector<size_t>>* rows) {
  const JsonValue* v = obj.Find("rows");
  if (v == nullptr) return Status::OK();
  if (!v->is_array()) return BadField("rows", "expected an array of arrays");
  if (v->AsArray().size() > kMaxRowsPerRequest) {
    return BadField("rows", "more than " +
                                std::to_string(kMaxRowsPerRequest) +
                                " rows in one request");
  }
  rows->reserve(v->AsArray().size());
  for (const JsonValue& row : v->AsArray()) {
    if (!row.is_array()) return BadField("rows", "row is not an array");
    std::vector<size_t> items;
    items.reserve(row.AsArray().size());
    for (const JsonValue& item : row.AsArray()) {
      uint64_t id = 0;
      if (!AsIndex(item, kMaxDeclaredItems - 1, &id)) {
        return BadField("rows", "item id out of range");
      }
      items.push_back(static_cast<size_t>(id));
    }
    rows->push_back(std::move(items));
  }
  return Status::OK();
}

Status ReadItemset(const JsonValue& obj, std::vector<size_t>* itemset) {
  const JsonValue* v = obj.Find("itemset");
  if (v == nullptr) return BadField("itemset", "required for op 'support'");
  if (!v->is_array()) return BadField("itemset", "expected an array");
  for (const JsonValue& item : v->AsArray()) {
    uint64_t id = 0;
    if (!AsIndex(item, kMaxDeclaredItems - 1, &id)) {
      return BadField("itemset", "item id out of range");
    }
    itemset->push_back(static_cast<size_t>(id));
  }
  return Status::OK();
}

Status ValidSessionName(const std::string& name) {
  if (name.empty() || name.size() > kMaxSessionNameLength) {
    return BadField("session", "name must be 1.." +
                                   std::to_string(kMaxSessionNameLength) +
                                   " characters");
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    if (!ok) {
      return BadField("session",
                      "only [A-Za-z0-9._-] allowed (names become "
                      "state-directory file names)");
    }
  }
  // Forbid names that escape the state directory or collide with the
  // dot-file namespace.
  if (name[0] == '.') return BadField("session", "must not start with '.'");
  return Status::OK();
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kPing:
      return "ping";
    case Op::kOpen:
      return "open";
    case Op::kPush:
      return "push";
    case Op::kMine:
      return "mine";
    case Op::kSupport:
      return "support";
    case Op::kRules:
      return "rules";
    case Op::kBorder:
      return "border";
    case Op::kStats:
      return "stats";
    case Op::kScrape:
      return "scrape";
    case Op::kCheckpoint:
      return "checkpoint";
    case Op::kClose:
      return "close";
    case Op::kShutdown:
      return "shutdown";
    case Op::kSleep:
      return "sleep";
  }
  return "unknown";
}

Result<Request> ParseRequest(const std::string& line) {
  if (line.size() > kMaxRequestBytes) {
    return Status::InvalidArgument("request exceeds " +
                                   std::to_string(kMaxRequestBytes) +
                                   " bytes");
  }
  Result<obs::JsonValue> parsed = obs::ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& obj = parsed.value();
  if (!obj.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  Request req;
  // op ------------------------------------------------------------------
  const JsonValue* opv = obj.Find("op");
  if (opv == nullptr || !opv->is_string()) {
    return BadField("op", "required string");
  }
  const std::string& op = opv->AsString();
  if (op == "ping") {
    req.op = Op::kPing;
  } else if (op == "open") {
    req.op = Op::kOpen;
  } else if (op == "push") {
    req.op = Op::kPush;
  } else if (op == "mine") {
    req.op = Op::kMine;
  } else if (op == "support") {
    req.op = Op::kSupport;
  } else if (op == "rules") {
    req.op = Op::kRules;
  } else if (op == "border") {
    req.op = Op::kBorder;
  } else if (op == "stats") {
    req.op = Op::kStats;
  } else if (op == "scrape") {
    req.op = Op::kScrape;
  } else if (op == "checkpoint") {
    req.op = Op::kCheckpoint;
  } else if (op == "close") {
    req.op = Op::kClose;
  } else if (op == "shutdown") {
    req.op = Op::kShutdown;
  } else if (op == "sleep") {
    req.op = Op::kSleep;
  } else {
    return BadField("op", "unknown operation '" + op + "'");
  }

  // id -------------------------------------------------------------------
  Status s = ReadU64(obj, "id", uint64_t{1} << 53, &req.id);
  if (!s.ok()) return s;

  // session --------------------------------------------------------------
  const JsonValue* sess = obj.Find("session");
  if (sess != nullptr) {
    if (!sess->is_string()) return BadField("session", "expected a string");
    req.session = sess->AsString();
  }
  const bool needs_session =
      req.op == Op::kOpen || req.op == Op::kPush || req.op == Op::kMine ||
      req.op == Op::kSupport || req.op == Op::kRules ||
      req.op == Op::kBorder || req.op == Op::kClose;
  if (needs_session) {
    s = ValidSessionName(req.session);
    if (!s.ok()) return s;
  }

  // open payloads ----------------------------------------------------------
  const JsonValue* path = obj.Find("path");
  if (path != nullptr) {
    if (!path->is_string()) return BadField("path", "expected a string");
    req.path = path->AsString();
  }
  uint64_t items = 0;
  s = ReadU64(obj, "items", kMaxDeclaredItems, &items);
  if (!s.ok()) return s;
  req.num_items = static_cast<size_t>(items);
  s = ReadRows(obj, &req.rows);
  if (!s.ok()) return s;
  const JsonValue* stream = obj.Find("stream");
  if (stream != nullptr) {
    if (!stream->is_object()) {
      return BadField("stream", "expected an object");
    }
    StreamSpec spec;
    uint64_t u = 0;
    s = ReadU64(*stream, "min_support", uint64_t{1} << 32, &u);
    if (!s.ok()) return s;
    spec.min_support = static_cast<size_t>(u);
    u = 0;
    s = ReadU64(*stream, "window", uint64_t{1} << 32, &u);
    if (!s.ok()) return s;
    spec.window_rows = static_cast<size_t>(u);
    u = 0;
    s = ReadU64(*stream, "slide", uint64_t{1} << 32, &u);
    if (!s.ok()) return s;
    spec.slide_rows = static_cast<size_t>(u);
    if (spec.window_rows == 0) {
      return BadField("stream.window", "must be positive");
    }
    if (spec.slide_rows > spec.window_rows) {
      return BadField("stream.slide", "must not exceed the window");
    }
    req.stream = spec;
  }
  if (req.op == Op::kOpen && req.stream.has_value() && !req.path.empty()) {
    return BadField("stream", "stream sessions take inline rows, not a path");
  }

  // query knobs ------------------------------------------------------------
  uint64_t u = 0;
  s = ReadU64(obj, "min_support", uint64_t{1} << 32, &u);
  if (!s.ok()) return s;
  req.min_support = static_cast<size_t>(u);
  u = 0;
  s = ReadU64(obj, "shards", 64, &u);
  if (!s.ok()) return s;
  req.shards = static_cast<size_t>(u);
  const JsonValue* conf = obj.Find("min_conf");
  if (conf != nullptr) {
    if (!conf->is_number() || !(conf->AsNumber() >= 0.0) ||
        conf->AsNumber() > 1.0) {
      return BadField("min_conf", "expected a number in [0, 1]");
    }
    req.min_conf = conf->AsNumber();
  }
  if (req.op == Op::kSupport) {
    s = ReadItemset(obj, &req.itemset);
    if (!s.ok()) return s;
  }
  s = ReadU64(obj, "deadline_ms", uint64_t{1} << 32, &req.deadline_ms);
  if (!s.ok()) return s;
  const JsonValue* full = obj.Find("full");
  if (full != nullptr) {
    if (!full->is_bool()) return BadField("full", "expected a bool");
    req.full = full->AsBool();
  }
  s = ReadU64(obj, "ms", uint64_t{1} << 32, &req.sleep_ms);
  if (!s.ok()) return s;

  // chaos knobs (test surface) ---------------------------------------------
  const JsonValue* chaos = obj.Find("chaos_seed");
  if (chaos != nullptr) {
    uint64_t seed = 0;
    if (!AsIndex(*chaos, uint64_t{1} << 53, &seed)) {
      return BadField("chaos_seed", "expected an integer");
    }
    req.chaos_seed = seed;
    const JsonValue* rate = obj.Find("chaos_rate");
    if (rate != nullptr) {
      if (!rate->is_number() || !(rate->AsNumber() >= 0.0) ||
          rate->AsNumber() > 1.0) {
        return BadField("chaos_rate", "expected a number in [0, 1]");
      }
      req.chaos_rate = rate->AsNumber();
    }
    const JsonValue* perm = obj.Find("chaos_permanent_rate");
    if (perm != nullptr) {
      if (!perm->is_number() || !(perm->AsNumber() >= 0.0) ||
          perm->AsNumber() > 1.0) {
        return BadField("chaos_permanent_rate",
                        "expected a number in [0, 1]");
      }
      req.chaos_permanent_rate = perm->AsNumber();
    }
  }
  return req;
}

obs::JsonValue ItemsetToJson(const Bitset& set) {
  std::vector<JsonValue> items;
  items.reserve(set.Count());
  set.ForEach([&](size_t i) {
    items.push_back(JsonValue::Number(static_cast<double>(i)));
  });
  return JsonValue::Array(std::move(items));
}

std::string OkResponse(
    uint64_t id,
    std::vector<std::pair<std::string, obs::JsonValue>> fields) {
  std::vector<std::pair<std::string, JsonValue>> members;
  members.reserve(fields.size() + 2);
  members.emplace_back("id", JsonValue::Number(static_cast<double>(id)));
  members.emplace_back("ok", JsonValue::Bool(true));
  for (auto& [k, v] : fields) members.emplace_back(std::move(k), std::move(v));
  return obs::DumpJson(JsonValue::Object(std::move(members)));
}

std::string ErrorResponse(uint64_t id, const Status& status,
                          uint64_t retry_after_ms) {
  std::vector<std::pair<std::string, JsonValue>> members;
  members.emplace_back("id", JsonValue::Number(static_cast<double>(id)));
  members.emplace_back("ok", JsonValue::Bool(false));
  members.emplace_back("code",
                       JsonValue::String(StatusCodeToken(status.code())));
  members.emplace_back("error", JsonValue::String(status.message()));
  if (retry_after_ms > 0) {
    members.emplace_back(
        "retry_after_ms",
        JsonValue::Number(static_cast<double>(retry_after_ms)));
  }
  return obs::DumpJson(JsonValue::Object(std::move(members)));
}

const char* StatusCodeToken(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kIOError:
      return "io_error";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

namespace {

void HashSet(obs::Fnv1a64* h, const Bitset& set) {
  h->UpdateU64(set.Count());
  for (uint64_t w : set.words()) h->UpdateU64(w);
}

}  // namespace

std::string TheoryFingerprint(const std::vector<FrequentItemset>& frequent,
                              const std::vector<Bitset>& maximal,
                              const std::vector<Bitset>& negative_border) {
  obs::Fnv1a64 h;
  h.UpdateU64(frequent.size());
  for (const FrequentItemset& f : frequent) {
    HashSet(&h, f.items);
    h.UpdateU64(f.support);
  }
  h.UpdateU64(maximal.size());
  for (const Bitset& m : maximal) HashSet(&h, m);
  h.UpdateU64(negative_border.size());
  for (const Bitset& b : negative_border) HashSet(&h, b);
  return h.HexDigest();
}

}  // namespace serve
}  // namespace hgm
