#pragma once

/// \file admission.h
/// \brief Admission control for the mining service: bounded queue,
/// deadline-derived budgets, typed load-shedding.
///
/// Theorem 10 prices a mining request before it runs; admission control
/// is the same idea applied to the service as a whole.  Every data
/// request arrives with (or is assigned) a wall-clock deadline, and the
/// controller tracks two resources: queue slots and the total
/// milliseconds of deadline budget currently admitted but not finished
/// (the "in-flight budget" — a proxy for how much work the box has
/// already promised).  A request that would overflow either cap is shed
/// *immediately* with a typed Unavailable carrying `retry_after_ms`,
/// instead of joining a queue it would time out in.  Shedding early and
/// loudly is the graceful-degradation contract: under overload the
/// service stays correct and responsive for the work it does accept.

#include <cstdint>

#include "common/thread_annotations.h"

namespace hgm {
namespace serve {

/// Caps and defaults for one server's admission controller.
struct AdmissionConfig {
  /// Data requests admitted but not yet finished (queued + executing).
  size_t max_queue = 64;
  /// Cap on the summed deadline budgets of admitted-unfinished requests.
  uint64_t max_inflight_ms = 60000;
  /// Deadline assigned to requests that do not carry one.
  uint64_t default_deadline_ms = 2000;
  /// Hard ceiling on any request's deadline (a client asking for more is
  /// clamped, not rejected).
  uint64_t max_deadline_ms = 30000;
  /// Worker count, for the retry-after estimate (how fast the in-flight
  /// budget drains).
  size_t workers = 2;
};

/// Outcome of one admission decision.
struct AdmissionDecision {
  bool admitted = false;
  /// Effective deadline budget for the request (clamped), valid iff
  /// admitted.
  uint64_t budget_ms = 0;
  /// Backoff hint for the client, valid iff shed.
  uint64_t retry_after_ms = 0;
  /// Why the request was shed: "queue_full", "inflight_budget", or
  /// "draining".  nullptr iff admitted.
  const char* shed_reason = nullptr;
};

/// Thread-safe admission ledger.  TryAdmit charges a slot and the
/// request's budget; OnFinish refunds both.  CloseAdmissions flips the
/// controller into drain mode, after which every TryAdmit sheds with
/// reason "draining" — in-flight work still finishes and refunds.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config)
      : config_(config) {}

  /// Decides one data request with the client-requested deadline
  /// (0 = use the default).
  AdmissionDecision TryAdmit(uint64_t requested_deadline_ms)
      HGM_EXCLUDES(mu_);

  /// Refunds the slot and budget charged by an admitted request.
  void OnFinish(uint64_t budget_ms) HGM_EXCLUDES(mu_);

  /// Stops admitting; already-admitted requests are unaffected.
  void CloseAdmissions() HGM_EXCLUDES(mu_);

  bool closed() const HGM_EXCLUDES(mu_);
  size_t admitted_inflight() const HGM_EXCLUDES(mu_);
  uint64_t inflight_ms() const HGM_EXCLUDES(mu_);

 private:
  /// How long until enough in-flight budget drains for a retry to stand
  /// a chance: the in-flight milliseconds split across the workers, with
  /// a floor so clients never spin at zero.
  uint64_t RetryAfterMs() const HGM_REQUIRES(mu_);

  const AdmissionConfig config_;
  mutable Mutex mu_;
  size_t inflight_ HGM_GUARDED_BY(mu_) = 0;
  uint64_t inflight_ms_ HGM_GUARDED_BY(mu_) = 0;
  bool closed_ HGM_GUARDED_BY(mu_) = false;
};

}  // namespace serve
}  // namespace hgm
