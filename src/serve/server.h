#pragma once

/// \file server.h
/// \brief The long-lived mining server: request queue, workers, watchdog,
/// checkpointer, graceful drain.
///
/// Transport-agnostic core of `hgmine_serve`: callers feed it request
/// lines (Submit for async with a completion callback, Handle for the
/// synchronous test/CLI shape) and it runs them through four cooperating
/// pieces:
///
///   * **admission** (serve/admission.h): data ops pass the bounded
///     queue + in-flight-budget gate or are shed with a typed
///     Unavailable; control ops (ping/stats/scrape/checkpoint/shutdown)
///     bypass the queue entirely, so health checks and metric scrapes
///     stay responsive under overload;
///   * **workers**: N threads drain the queue.  Each owns a
///     ThreadPool(1) handed into the miners (ThreadPool admits only one
///     external batch at a time, so workers must not share one), and
///     each request runs under a DeadlineBudget derived from its
///     remaining admission deadline — deadline propagation reaches every
///     miner loop through the PR5 budget seam;
///   * **watchdog**: a periodic thread that flips the CancellationSource
///     of any request running past deadline + grace.  A wedged worker is
///     cancelled at the next budget boundary and answers with a
///     certified partial — the service never loses a worker to one bad
///     request;
///   * **checkpointer**: a periodic thread calling SaveWarm on dirty
///     sessions (WALs are already durable per-append), so `kill -9`
///     loses at most the warm accelerator state, never rows.
///
/// Drain (SIGTERM path): BeginDrain closes admissions — new data ops
/// shed with "draining" — then Drain() joins the workers after the queue
/// empties, force-checkpoints every session, and emits a final
/// `kind:"serve"` RunReport.  CrashForTest() is the opposite: stop
/// everything *without* checkpointing, simulating `kill -9` for
/// in-process recovery tests (recovery itself is Start() on a fresh
/// Server over the same state_dir).

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/run_budget.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/session.h"

namespace hgm {
namespace serve {

/// Everything a server instance needs to know.
struct ServerConfig {
  size_t workers = 2;
  AdmissionConfig admission;
  /// Session WALs + warm checkpoints live here; empty = ephemeral.
  std::string state_dir;
  /// Warm-checkpoint cadence; 0 = only on drain / explicit `checkpoint`.
  uint64_t checkpoint_interval_ms = 0;
  /// Watchdog scan cadence and the grace past a request's deadline
  /// before its cancellation token is flipped.
  uint64_t watchdog_interval_ms = 50;
  uint64_t watchdog_grace_ms = 250;
  /// Failover policy for sharded mines.
  RetryPolicy shard_retry;
  /// Allow the `sleep` test op (watchdog tests need a wedgeable worker).
  bool enable_test_ops = false;
  /// Final drain report path; empty = skip, "-" = stdout.
  std::string final_report_path;
  /// Sessions to recover eagerly at Start (names without extension);
  /// empty = recover lazily on first reference.
  std::vector<std::string> recover_sessions;
};

/// See file comment.  Thread-safe: Submit/Handle may be called from any
/// number of transport threads.
class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  /// Recovers sessions named in config.recover_sessions and spawns the
  /// worker/watchdog/checkpointer threads.  Must be called once before
  /// Submit/Handle.
  Status Start();

  /// Feeds one request line; \p done receives the response line exactly
  /// once (inline for control ops, sheds, and parse errors; from a
  /// worker for admitted data ops).
  void Submit(std::string line, std::function<void(std::string)> done);

  /// Synchronous Submit — blocks until the response is ready.
  std::string Handle(const std::string& line);

  /// True once a shutdown request or BeginDrain closed admissions.
  bool draining() const;

  /// Closes admissions (new data ops shed with "draining").
  void BeginDrain();

  /// Finishes queued work, joins every thread, force-checkpoints all
  /// sessions, emits the final run report.  Idempotent.
  void Drain();

  /// Stops threads WITHOUT checkpointing or draining the queue —
  /// simulated kill -9 for in-process recovery tests.  The object is
  /// dead afterwards; recover by constructing a fresh Server on the same
  /// state_dir.
  void CrashForTest();

  /// Requests served (for tests / the drain report).
  uint64_t requests_handled() const;

 private:
  struct QueueItem {
    Request request;
    std::function<void(std::string)> done;
    uint64_t budget_ms = 0;
    std::chrono::steady_clock::time_point deadline;
    std::shared_ptr<CancellationSource> cancel;
  };

  void WorkerLoop(size_t worker_index);
  void WatchdogLoop();
  void CheckpointerLoop();

  /// Executes one admitted data op under its budget; returns the
  /// response line.
  std::string Execute(const Request& req, const RunBudget& budget,
                      ThreadPool* pool);

  /// Control ops answered inline on the submitting thread.
  std::string HandleControl(const Request& req);

  /// Looks up (or lazily recovers) a session by name.
  Result<std::shared_ptr<Session>> FindSession(const std::string& name,
                                               bool recover_missing)
      HGM_EXCLUDES(mu_);

  Status CheckpointAll();
  void WriteFinalReport(uint64_t wall_ms);
  void JoinThreads();

  const ServerConfig config_;
  SessionOptions session_options_;
  AdmissionController admission_;

  mutable Mutex mu_;
  CondVar queue_cv_;
  CondVar idle_cv_;
  std::deque<QueueItem> queue_ HGM_GUARDED_BY(mu_);
  /// In-flight items indexed by a ticket, for the watchdog scan.
  std::map<uint64_t, QueueItem> inflight_ HGM_GUARDED_BY(mu_);
  uint64_t next_ticket_ HGM_GUARDED_BY(mu_) = 0;
  bool stopping_ HGM_GUARDED_BY(mu_) = false;
  bool started_ HGM_GUARDED_BY(mu_) = false;
  uint64_t handled_ HGM_GUARDED_BY(mu_) = 0;
  std::map<std::string, std::shared_ptr<Session>> sessions_
      HGM_GUARDED_BY(mu_);

  std::vector<std::thread> workers_;
  std::thread watchdog_;
  std::thread checkpointer_;
  std::chrono::steady_clock::time_point start_time_;
  bool drained_ = false;  // main-thread lifecycle flag (Drain idempotence)
};

}  // namespace serve
}  // namespace hgm
