#include "serve/session.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "mining/partition.h"
#include "mining/sharded_db.h"
#include "obs/metrics.h"
#include "testing/fault_injection.h"

namespace hgm {
namespace serve {

namespace {

constexpr char kWalMagic[] = "hgmine-serve-wal";

/// Metadata carried by the WAL's comment header line.
struct WalHeader {
  size_t items = 0;
  bool stream = false;
  size_t min_support = 0;
  size_t window = 0;
  size_t slide = 0;
};

std::string FormatWalHeader(const WalHeader& h) {
  std::ostringstream os;
  os << "# " << kWalMagic << " v1 items=" << h.items
     << " stream=" << (h.stream ? 1 : 0) << " minsup=" << h.min_support
     << " window=" << h.window << " slide=" << h.slide << "\n";
  return os.str();
}

Result<WalHeader> ParseWalHeader(const std::string& line) {
  std::istringstream is(line);
  std::string hash, magic, version;
  is >> hash >> magic >> version;
  if (hash != "#" || magic != kWalMagic || version != "v1") {
    return Status::InvalidArgument("wal: bad header line");
  }
  WalHeader h;
  std::string kv;
  while (is >> kv) {
    const size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("wal: bad header token '" + kv + "'");
    }
    const std::string key = kv.substr(0, eq);
    uint64_t value = 0;
    try {
      value = std::stoull(kv.substr(eq + 1));
    } catch (...) {
      return Status::InvalidArgument("wal: bad header value in '" + kv +
                                     "'");
    }
    if (key == "items") {
      h.items = static_cast<size_t>(value);
    } else if (key == "stream") {
      h.stream = value != 0;
    } else if (key == "minsup") {
      h.min_support = static_cast<size_t>(value);
    } else if (key == "window") {
      h.window = static_cast<size_t>(value);
    } else if (key == "slide") {
      h.slide = static_cast<size_t>(value);
    }  // unknown keys: forward compatibility, ignore
  }
  if (h.items == 0) return Status::InvalidArgument("wal: items missing");
  return h;
}

Result<Bitset> RowFromIndices(size_t num_items,
                              const std::vector<size_t>& items) {
  for (size_t i : items) {
    if (i >= num_items) {
      return Status::InvalidArgument(
          "row item " + std::to_string(i) + " outside the universe of " +
          std::to_string(num_items) + " items");
    }
  }
  return Bitset::FromIndices(num_items, items);
}

/// Reconstructs the answer fields shared by both miners.
MineAnswer AnswerFromApriori(const AprioriResult& r) {
  MineAnswer a;
  a.frequent = r.frequent;
  a.maximal = r.maximal;
  a.negative_border = r.negative_border;
  a.stop_reason = r.stop_reason;
  a.degraded = r.stop_reason != StopReason::kCompleted;
  a.evaluations = r.support_counts;
  return a;
}

}  // namespace

Session::~Session() {
  MutexLock lock(mu_);
  if (wal_ != nullptr) {
    std::fclose(wal_);
    wal_ = nullptr;
  }
}

Result<std::unique_ptr<Session>> Session::Open(const Request& req,
                                               const SessionOptions& options) {
  std::unique_ptr<Session> s(new Session());
  s->name_ = req.session;
  s->state_dir_ = options.state_dir;
  s->options_ = options;

  MutexLock lock(s->mu_);
  if (req.stream.has_value()) {
    if (!req.rows.empty()) {
      return Status::InvalidArgument(
          "stream sessions open empty; push rows afterwards");
    }
    if (req.num_items == 0) {
      return Status::InvalidArgument("stream open requires 'items'");
    }
    if (req.stream->min_support == 0) {
      return Status::InvalidArgument(
          "stream open requires stream.min_support >= 1");
    }
    const size_t slide = req.stream->slide_rows == 0
                             ? req.stream->window_rows
                             : req.stream->slide_rows;
    if (req.stream->window_rows % slide != 0) {
      return Status::InvalidArgument("stream.slide must divide the window");
    }
    s->num_items_ = req.num_items;
    StreamOptions sopts;
    sopts.slide_rows = slide;
    s->miner_ = std::make_unique<StreamMiner>(
        req.num_items, req.stream->min_support, req.stream->window_rows,
        sopts);
  } else if (!req.path.empty()) {
    Result<TransactionDatabase> loaded =
        TransactionDatabase::LoadBasketFile(req.path, req.num_items);
    if (!loaded.ok()) return loaded.status();
    s->db_ =
        std::make_unique<TransactionDatabase>(std::move(loaded.value()));
    s->num_items_ = s->db_->num_items();
    if (s->num_items_ == 0) {
      return Status::InvalidArgument("dataset declares an empty universe");
    }
  } else {
    if (req.num_items == 0) {
      return Status::InvalidArgument(
          "open with inline rows requires 'items'");
    }
    for (const std::vector<size_t>& row : req.rows) {
      Result<Bitset> checked = RowFromIndices(req.num_items, row);
      if (!checked.ok()) return checked.status();
    }
    s->num_items_ = req.num_items;
    s->db_ = std::make_unique<TransactionDatabase>(
        TransactionDatabase::FromRows(req.num_items, req.rows));
  }

  if (!s->state_dir_.empty()) {
    Status ws = s->OpenWal(/*fresh=*/true);
    if (!ws.ok()) return ws;
    // A batch session opened from a file or inline rows writes those rows
    // through the log too, so the WAL alone rebuilds the session.
    if (s->db_ != nullptr) {
      for (const Bitset& row : s->db_->rows()) {
        Status ls = s->LogRow(row);
        if (!ls.ok()) return ls;
      }
    }
  }
  if (s->db_ != nullptr) s->rows_logged_ = s->db_->num_transactions();
  HGM_OBS_COUNT("serve.sessions_opened", 1);
  return s;
}

Result<std::unique_ptr<Session>> Session::Recover(
    const std::string& name, const SessionOptions& options) {
  std::unique_ptr<Session> s(new Session());
  s->name_ = name;
  s->state_dir_ = options.state_dir;
  s->options_ = options;
  MutexLock lock(s->mu_);

  std::ifstream in(s->WalPath(), std::ios::binary);
  if (!in) return Status::NotFound("no wal for session '" + name + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("read error on " + s->WalPath());
  std::string text = buf.str();
  if (text.empty()) {
    return Status::InvalidArgument("wal for '" + name + "' is empty");
  }
  // Tolerate a torn tail: a crash mid-append leaves a final line without
  // its newline; that row was never acknowledged, so drop it.
  const size_t last_nl = text.rfind('\n');
  if (last_nl == std::string::npos) {
    return Status::InvalidArgument("wal for '" + name +
                                   "' has no complete line");
  }
  text.resize(last_nl + 1);

  const size_t header_end = text.find('\n');
  Result<WalHeader> header = ParseWalHeader(text.substr(0, header_end));
  if (!header.ok()) return header.status();
  const WalHeader& h = header.value();
  s->num_items_ = h.items;

  // The header is a '#' comment, so the whole log parses as basket text.
  Result<TransactionDatabase> rows =
      TransactionDatabase::ParseBasketText(text, h.items, s->WalPath());
  if (!rows.ok()) return rows.status();

  if (h.stream) {
    if (h.min_support == 0 || h.window == 0 || h.slide == 0 ||
        h.window % h.slide != 0) {
      return Status::InvalidArgument("wal for '" + name +
                                     "' has a bad stream geometry");
    }
    StreamOptions sopts;
    sopts.slide_rows = h.slide;
    s->miner_ = std::make_unique<StreamMiner>(h.items, h.min_support,
                                              h.window, sopts);
    // Replay: the repair path is deterministic, so driving the same rows
    // through Push/AdvanceWindow (unlimited budget) rebuilds the borders
    // and tilted history bit-identically to the pre-crash engine.
    for (const Bitset& row : rows.value().rows()) {
      if (s->miner_->Push(row)) (void)s->miner_->AdvanceWindow();
    }
  } else {
    s->db_ =
        std::make_unique<TransactionDatabase>(std::move(rows.value()));
  }
  s->rows_logged_ =
      h.stream ? rows.value().num_transactions() : s->db_->num_transactions();

  // Warm state is an accelerator, never the truth: adopt it only when its
  // logged-row count matches the WAL, ignore it (and any parse failure)
  // otherwise.
  if (s->db_ != nullptr) {
    Result<Checkpoint> warm = LoadCheckpointFile(s->WarmPath());
    uint64_t warm_rows = 0;
    if (warm.ok() && warm.value().kind == "serve" &&
        warm.value().width == s->num_items_ &&
        warm.value().GetScalar("rows_logged", &warm_rows) &&
        warm_rows == s->rows_logged_) {
      const Checkpoint& cp = warm.value();
      for (const auto& [sect_name, entries] : cp.sections) {
        if (sect_name.rfind("th_", 0) != 0) continue;
        size_t minsup = 0;
        try {
          minsup = std::stoull(sect_name.substr(3));
        } catch (...) {
          continue;
        }
        AprioriResult cached;
        cached.frequent.reserve(entries.size());
        bool ok = true;
        for (const CheckpointEntry& e : entries) {
          if (e.items.size() != s->num_items_) {
            ok = false;
            break;
          }
          cached.frequent.push_back(
              {e.items, static_cast<size_t>(e.value)});
        }
        if (!ok) continue;
        Status rs = ReadSetSection(cp, "max_" + sect_name.substr(3),
                                   s->num_items_, &cached.maximal);
        if (!rs.ok()) continue;
        rs = ReadSetSection(cp, "bdn_" + sect_name.substr(3), s->num_items_,
                            &cached.negative_border);
        if (!rs.ok()) continue;
        s->CacheMine(minsup, std::move(cached));
      }
      for (const auto& [scalar_name, shards] : cp.scalars) {
        if (scalar_name.rfind("pending_", 0) != 0) continue;
        size_t minsup = 0;
        try {
          minsup = std::stoull(scalar_name.substr(8));
        } catch (...) {
          continue;
        }
        Result<Checkpoint> parked =
            LoadCheckpointFile(s->PendingMinePath(minsup));
        uint64_t parked_rows = 0, parked_shards = 0;
        if (parked.ok() &&
            parked.value().GetScalar("serve_rows", &parked_rows) &&
            parked.value().GetScalar("serve_shards", &parked_shards) &&
            parked_rows == s->rows_logged_ && parked_shards == shards) {
          s->pending_mines_.emplace(minsup, std::move(parked.value()));
        }
      }
    }
  }

  Status ws = s->OpenWal(/*fresh=*/false);
  if (!ws.ok()) return ws;
  s->dirty_ = false;
  HGM_OBS_COUNT("serve.sessions_recovered", 1);
  return s;
}

Status Session::OpenWal(bool fresh) {
  if (state_dir_.empty()) return Status::OK();
  wal_ = std::fopen(WalPath().c_str(), fresh ? "wb" : "ab");
  if (wal_ == nullptr) {
    return Status::IOError("cannot open wal: " + WalPath());
  }
  if (fresh) {
    WalHeader h;
    h.items = num_items_;
    h.stream = miner_ != nullptr;
    if (miner_ != nullptr) {
      h.min_support = miner_->min_support();
      h.window = miner_->window_rows();
      h.slide = miner_->slide_rows();
    }
    const std::string header = FormatWalHeader(h);
    if (std::fwrite(header.data(), 1, header.size(), wal_) !=
            header.size() ||
        std::fflush(wal_) != 0) {
      return Status::IOError("short write to wal: " + WalPath());
    }
  }
  return Status::OK();
}

Status Session::LogRow(const Bitset& row) {
  if (wal_ == nullptr) return Status::OK();
  std::string line;
  bool first = true;
  row.ForEach([&](size_t i) {
    if (!first) line.push_back(' ');
    first = false;
    line += std::to_string(i);
  });
  line.push_back('\n');
  // Flushed before the request is acknowledged: once the bytes are in
  // the page cache, a kill -9 of the *process* cannot lose them.
  if (std::fwrite(line.data(), 1, line.size(), wal_) != line.size() ||
      std::fflush(wal_) != 0) {
    return Status::IOError("short write to wal: " + WalPath());
  }
  return Status::OK();
}

Result<PushOutcome> Session::Append(
    const std::vector<std::vector<size_t>>& rows, const RunBudget& budget,
    ThreadPool* pool) {
  MutexLock lock(mu_);
  PushOutcome out;

  if (miner_ != nullptr) {
    miner_->set_budget(budget);
    miner_->set_pool(pool);
    // A previously tripped boundary repair must finish before the window
    // can move: resume it under this request's budget.
    if (pending_repair_.has_value()) {
      Result<StreamWindowResult> resumed =
          miner_->ResumeAdvance(*pending_repair_);
      if (!resumed.ok()) return resumed.status();
      if (resumed.value().stop_reason != StopReason::kCompleted) {
        pending_repair_ = resumed.value().checkpoint;
        out.degraded = true;
        out.stop_reason = resumed.value().stop_reason;
        dirty_ = true;
        return out;
      }
      pending_repair_.reset();
      out.boundaries.push_back(std::move(resumed.value()));
    }
    for (const std::vector<size_t>& row : rows) {
      Result<Bitset> checked = RowFromIndices(num_items_, row);
      if (!checked.ok()) return checked.status();
      const bool due = miner_->Push(checked.value());
      Status ls = LogRow(checked.value());
      if (!ls.ok()) return ls;
      ++rows_logged_;
      ++out.consumed;
      dirty_ = true;
      if (due) {
        StreamWindowResult res = miner_->AdvanceWindow();
        if (res.stop_reason != StopReason::kCompleted) {
          // Certified-prefix semantics: park the repair, stop consuming;
          // the client re-sends rows[consumed:] and the next push
          // resumes the boundary first.
          out.degraded = true;
          out.stop_reason = res.stop_reason;
          pending_repair_ = std::move(res.checkpoint);
          HGM_OBS_COUNT("serve.boundary_trips", 1);
          return out;
        }
        out.boundaries.push_back(std::move(res));
      }
    }
    return out;
  }

  for (const std::vector<size_t>& row : rows) {
    Result<Bitset> checked = RowFromIndices(num_items_, row);
    if (!checked.ok()) return checked.status();
    db_->AddTransaction(checked.value());
    Status ls = LogRow(checked.value());
    if (!ls.ok()) return ls;
    ++rows_logged_;
    ++out.consumed;
  }
  if (out.consumed > 0) {
    InvalidateDerivedState();
    dirty_ = true;
  }
  return out;
}

Result<MineAnswer> Session::Mine(size_t min_support, size_t shards,
                                 const RunBudget& budget, ThreadPool* pool,
                                 const std::optional<ChaosSpec>& chaos) {
  MutexLock lock(mu_);
  return MineLocked(min_support, shards, budget, pool, chaos);
}

Result<MineAnswer> Session::MineLocked(
    size_t min_support, size_t shards, const RunBudget& budget,
    ThreadPool* pool, const std::optional<ChaosSpec>& chaos) {
  if (min_support == 0) {
    return Status::InvalidArgument("mine requires min_support >= 1");
  }

  // Stream sessions mine a snapshot of the current window — the batch
  // cross-check surface — with no caching (the window moves).
  TransactionDatabase snapshot;
  TransactionDatabase* db = db_.get();
  if (miner_ != nullptr) {
    snapshot = miner_->WindowSnapshot();
    db = &snapshot;
  }

  if (db == db_.get() && !chaos.has_value()) {
    auto hit = cache_.find(min_support);
    if (hit != cache_.end()) {
      MineAnswer a = AnswerFromApriori(hit->second);
      a.from_cache = true;
      a.evaluations = 0;
      HGM_OBS_COUNT("serve.mine_cache_hits", 1);
      return a;
    }
  }

  // A parked partial mine for the same (min_support, shards, rows)
  // resumes mid-lattice instead of restarting — the serve layer's resume
  // contract.  Stale parks (rows or shape changed) are dropped.
  std::optional<Checkpoint> resume_from;
  if (db == db_.get()) {
    auto parked = pending_mines_.find(min_support);
    if (parked != pending_mines_.end()) {
      uint64_t parked_rows = 0, parked_shards = 0;
      if (parked->second.GetScalar("serve_rows", &parked_rows) &&
          parked->second.GetScalar("serve_shards", &parked_shards) &&
          parked_rows == db->num_transactions() &&
          parked_shards == shards && !chaos.has_value()) {
        resume_from = parked->second;
      }
      pending_mines_.erase(parked);
      (void)std::remove(PendingMinePath(min_support).c_str());
    }
  }

  MineAnswer answer;
  AprioriResult mined;
  if (shards == 0) {
    AprioriOptions opts;
    opts.pool = pool;
    opts.budget = budget;
    if (resume_from.has_value()) {
      Result<AprioriResult> resumed =
          ResumeFrequentSets(db, *resume_from, opts);
      if (!resumed.ok()) return resumed.status();
      mined = std::move(resumed.value());
      answer.resumed = true;
    } else {
      mined = MineFrequentSets(db, min_support, opts);
    }
  } else {
    ShardedTransactionDatabase sharded =
        ShardedTransactionDatabase::Split(*db, shards);
    PartitionOptions popts;
    popts.pool = pool;
    popts.budget = budget;
    popts.retry = options_.shard_retry;
    if (chaos.has_value()) {
      FaultSpec spec;
      spec.transient_rate = chaos->transient_rate;
      spec.permanent_rate = chaos->permanent_rate;
      spec.seed = chaos->seed;
      popts.shard_fault_hook = MakeShardFaultSchedule(spec);
      popts.sleeper = [](uint64_t) {};  // chaos runs never sleep for real
    }
    PartitionResult part;
    if (resume_from.has_value()) {
      Result<PartitionResult> resumed =
          ResumePartition(&sharded, *resume_from, popts);
      if (!resumed.ok()) return resumed.status();
      part = std::move(resumed.value());
      answer.resumed = true;
    } else {
      part = MinePartitioned(&sharded, min_support, popts);
    }
    answer.failed_shards = part.failed_shards;
    answer.shard_retries = part.shard_retries;
    if (!part.status.ok()) {
      // Shard failure past retry: the certified union over surviving
      // shards — exact supports, possibly missing sets (degraded, not an
      // error; the response says so).
      answer.frequent = std::move(part.frequent);
      answer.maximal = std::move(part.maximal);
      answer.negative_border = std::move(part.negative_border);
      answer.degraded = true;
      answer.stop_reason = part.stop_reason;
      answer.evaluations = part.phase2_evaluations;
      HGM_OBS_COUNT("serve.degraded_shard_loss", 1);
      return answer;
    }
    mined = AsAprioriResult(part);
    mined.stop_reason = part.stop_reason;
    mined.checkpoint = std::move(part.checkpoint);
  }

  const bool resumed_flag = answer.resumed;
  const auto failed = std::move(answer.failed_shards);
  const uint64_t retries = answer.shard_retries;
  answer = AnswerFromApriori(mined);
  answer.resumed = resumed_flag;
  answer.failed_shards = failed;
  answer.shard_retries = retries;

  if (db == db_.get()) {
    if (mined.stop_reason != StopReason::kCompleted &&
        mined.checkpoint.has_value()) {
      ParkMine(min_support, shards, std::move(*mined.checkpoint));
      HGM_OBS_COUNT("serve.mine_trips", 1);
    } else if (mined.stop_reason == StopReason::kCompleted &&
               !chaos.has_value()) {
      CacheMine(min_support, std::move(mined));
    }
  }
  return answer;
}

Result<size_t> Session::SupportOf(const std::vector<size_t>& itemset) {
  MutexLock lock(mu_);
  Result<Bitset> set = RowFromIndices(num_items_, itemset);
  if (!set.ok()) return set.status();
  if (miner_ != nullptr) {
    return miner_->WindowSnapshot().Support(set.value());
  }
  return db_->Support(set.value());
}

Result<std::vector<AssociationRule>> Session::Rules(
    size_t min_support, double min_conf, const RunBudget& budget,
    ThreadPool* pool, MineAnswer* answer_out) {
  MutexLock lock(mu_);
  Result<MineAnswer> mined =
      MineLocked(min_support, /*shards=*/0, budget, pool, std::nullopt);
  if (!mined.ok()) return mined.status();
  // Rules from a certified prefix are still sound — every antecedent
  // support is exact and present (the prefix is downward closed) — the
  // list is just possibly incomplete, and the degraded flag says so.
  AprioriResult for_rules;
  for_rules.frequent = mined.value().frequent;
  const size_t rows = miner_ != nullptr ? miner_->rows_in_window()
                                        : db_->num_transactions();
  Result<std::vector<AssociationRule>> rules =
      GenerateRules(for_rules, rows, min_conf);
  if (!rules.ok()) return rules.status();
  *answer_out = std::move(mined.value());
  return rules;
}

void Session::ParkMine(size_t min_support, size_t shards,
                       Checkpoint checkpoint) {
  checkpoint.SetScalar("serve_rows", db_->num_transactions());
  checkpoint.SetScalar("serve_shards", shards);
  pending_mines_[min_support] = std::move(checkpoint);
  dirty_ = true;
}

void Session::CacheMine(size_t min_support, AprioriResult result) {
  if (cache_.count(min_support) == 0) {
    cache_order_.push_back(min_support);
  }
  cache_[min_support] = std::move(result);
  while (cache_order_.size() > options_.mine_cache_capacity) {
    cache_.erase(cache_order_.front());
    cache_order_.erase(cache_order_.begin());
  }
  dirty_ = true;
}

void Session::InvalidateDerivedState() {
  cache_.clear();
  cache_order_.clear();
  pending_mines_.clear();
}

Status Session::SaveWarm() {
  MutexLock lock(mu_);
  if (state_dir_.empty() || !dirty_) return Status::OK();
  // Stream sessions: the WAL *is* the checkpoint (replay is
  // deterministic); parked repairs are rebuilt by replay too.
  if (miner_ != nullptr) {
    dirty_ = false;
    return Status::OK();
  }

  Checkpoint cp;
  cp.kind = "serve";
  cp.width = num_items_;
  cp.SetScalar("rows_logged", rows_logged_);
  for (const auto& [minsup, result] : cache_) {
    // Oversized theories exceed the checkpoint parse caps; skip them —
    // warm state is an accelerator, and a restart simply re-mines.
    if (result.frequent.size() > 2048) continue;
    const std::string suffix = std::to_string(minsup);
    std::vector<CheckpointEntry>* th = cp.AddSection("th_" + suffix);
    th->reserve(result.frequent.size());
    for (const FrequentItemset& f : result.frequent) {
      th->push_back({f.items, f.support});
    }
    AddSetSection(&cp, "max_" + suffix, result.maximal);
    AddSetSection(&cp, "bdn_" + suffix, result.negative_border);
  }
  for (const auto& [minsup, parked] : pending_mines_) {
    uint64_t shards = 0;
    (void)parked.GetScalar("serve_shards", &shards);
    cp.SetScalar("pending_" + std::to_string(minsup), shards);
    Status ps = SaveCheckpointFile(parked, PendingMinePath(minsup));
    if (!ps.ok()) return ps;
  }
  Status s = SaveCheckpointFile(cp, WarmPath());
  if (!s.ok()) return s;
  dirty_ = false;
  HGM_OBS_COUNT("serve.warm_saves", 1);
  return Status::OK();
}

std::vector<std::pair<std::string, obs::JsonValue>> Session::StatsFields() {
  MutexLock lock(mu_);
  using obs::JsonValue;
  std::vector<std::pair<std::string, JsonValue>> fields;
  fields.emplace_back("name", JsonValue::String(name_));
  fields.emplace_back("stream", JsonValue::Bool(miner_ != nullptr));
  fields.emplace_back("items",
                      JsonValue::Number(static_cast<double>(num_items_)));
  fields.emplace_back(
      "rows_logged", JsonValue::Number(static_cast<double>(rows_logged_)));
  if (miner_ != nullptr) {
    fields.emplace_back("rows_in_window",
                        JsonValue::Number(static_cast<double>(
                            miner_->rows_in_window())));
    fields.emplace_back("windows_completed",
                        JsonValue::Number(static_cast<double>(
                            miner_->windows_completed())));
    fields.emplace_back("repair_pending",
                        JsonValue::Bool(pending_repair_.has_value()));
  } else {
    fields.emplace_back("rows", JsonValue::Number(static_cast<double>(
                                    db_->num_transactions())));
    std::vector<JsonValue> cached;
    for (size_t minsup : cache_order_) {
      cached.push_back(JsonValue::Number(static_cast<double>(minsup)));
    }
    fields.emplace_back("cached_minsups",
                        JsonValue::Array(std::move(cached)));
    fields.emplace_back("pending_mines",
                        JsonValue::Number(static_cast<double>(
                            pending_mines_.size())));
  }
  return fields;
}

}  // namespace serve
}  // namespace hgm
