#include "serve/server.h"

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace hgm {
namespace serve {

namespace {

using obs::JsonValue;
using SteadyClock = std::chrono::steady_clock;

uint64_t MsSince(SteadyClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          SteadyClock::now() - start)
          .count());
}

JsonValue SetsToJson(const std::vector<Bitset>& sets) {
  std::vector<JsonValue> arr;
  arr.reserve(sets.size());
  for (const Bitset& s : sets) arr.push_back(ItemsetToJson(s));
  return JsonValue::Array(std::move(arr));
}

JsonValue FrequentToJson(const std::vector<FrequentItemset>& frequent) {
  std::vector<JsonValue> arr;
  arr.reserve(frequent.size());
  for (const FrequentItemset& f : frequent) {
    arr.push_back(JsonValue::Object(
        {{"items", ItemsetToJson(f.items)},
         {"support", JsonValue::Number(static_cast<double>(f.support))}}));
  }
  return JsonValue::Array(std::move(arr));
}

/// Shared renderer for mine/border answers: counts + fingerprint always,
/// degradation flags when set, full sets on request.
void AppendAnswerFields(
    const MineAnswer& a, bool full,
    std::vector<std::pair<std::string, JsonValue>>* fields) {
  fields->emplace_back(
      "frequent_count",
      JsonValue::Number(static_cast<double>(a.frequent.size())));
  fields->emplace_back(
      "maximal_count",
      JsonValue::Number(static_cast<double>(a.maximal.size())));
  fields->emplace_back("negative_border_count",
                       JsonValue::Number(static_cast<double>(
                           a.negative_border.size())));
  // Theorem 10: |Th ∪ Bd-(Th)| prices the whole conversation with the
  // oracle; clients use it to compare serve answers with batch runs.
  fields->emplace_back(
      "query_bound",
      JsonValue::Number(static_cast<double>(a.frequent.size() +
                                            a.negative_border.size())));
  fields->emplace_back(
      "fingerprint",
      JsonValue::String(TheoryFingerprint(a.frequent, a.maximal,
                                          a.negative_border)));
  fields->emplace_back(
      "evaluations",
      JsonValue::Number(static_cast<double>(a.evaluations)));
  if (a.from_cache) fields->emplace_back("from_cache", JsonValue::Bool(true));
  if (a.resumed) fields->emplace_back("resumed", JsonValue::Bool(true));
  if (a.degraded) {
    fields->emplace_back("degraded", JsonValue::Bool(true));
    fields->emplace_back("stop_reason",
                         JsonValue::String(StopReasonName(a.stop_reason)));
  }
  if (!a.failed_shards.empty()) {
    std::vector<JsonValue> shards;
    for (size_t s : a.failed_shards) {
      shards.push_back(JsonValue::Number(static_cast<double>(s)));
    }
    fields->emplace_back("failed_shards",
                         JsonValue::Array(std::move(shards)));
  }
  if (a.shard_retries > 0) {
    fields->emplace_back(
        "shard_retries",
        JsonValue::Number(static_cast<double>(a.shard_retries)));
  }
  if (full) {
    fields->emplace_back("frequent", FrequentToJson(a.frequent));
    fields->emplace_back("maximal", SetsToJson(a.maximal));
    fields->emplace_back("negative_border",
                         SetsToJson(a.negative_border));
  }
}

JsonValue BoundaryToJson(const StreamWindowResult& r, bool full) {
  std::vector<std::pair<std::string, JsonValue>> fields;
  fields.emplace_back(
      "window", JsonValue::Number(static_cast<double>(r.window_index)));
  fields.emplace_back(
      "rows", JsonValue::Number(static_cast<double>(r.rows_in_window)));
  MineAnswer a;
  a.frequent = r.frequent;
  a.maximal = r.maximal;
  a.negative_border = r.negative_border;
  a.evaluations = r.evaluations;
  AppendAnswerFields(a, full, &fields);
  fields.emplace_back("reused",
                      JsonValue::Number(static_cast<double>(r.reused)));
  fields.emplace_back("promoted",
                      JsonValue::Number(static_cast<double>(r.promoted)));
  fields.emplace_back("demoted",
                      JsonValue::Number(static_cast<double>(r.demoted)));
  return JsonValue::Object(std::move(fields));
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)), admission_([&] {
        AdmissionConfig a = config_.admission;
        a.workers = config_.workers == 0 ? 1 : config_.workers;
        return a;
      }()) {
  session_options_.state_dir = config_.state_dir;
  session_options_.shard_retry = config_.shard_retry;
}

Server::~Server() {
  if (!drained_) Drain();
}

Status Server::Start() {
  {
    MutexLock lock(mu_);
    if (started_) return Status::FailedPrecondition("Start called twice");
    started_ = true;
  }
  obs::EnableMetrics(true);
  start_time_ = SteadyClock::now();

  for (const std::string& name : config_.recover_sessions) {
    Result<std::shared_ptr<Session>> recovered =
        FindSession(name, /*recover_missing=*/true);
    if (!recovered.ok()) return recovered.status();
  }

  const size_t workers = config_.workers == 0 ? 1 : config_.workers;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
  if (config_.checkpoint_interval_ms > 0 && !config_.state_dir.empty()) {
    checkpointer_ = std::thread([this] { CheckpointerLoop(); });
  }
  return Status::OK();
}

void Server::Submit(std::string line,
                    std::function<void(std::string)> done) {
  HGM_OBS_COUNT("serve.requests", 1);
  Result<Request> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    HGM_OBS_COUNT("serve.parse_errors", 1);
    done(ErrorResponse(0, parsed.status()));
    return;
  }
  const Request& req = parsed.value();

  const bool control =
      req.op == Op::kPing || req.op == Op::kStats ||
      req.op == Op::kScrape || req.op == Op::kCheckpoint ||
      req.op == Op::kShutdown || req.op == Op::kClose;
  if (control) {
    done(HandleControl(req));
    return;
  }

  AdmissionDecision decision = admission_.TryAdmit(req.deadline_ms);
  if (!decision.admitted) {
    HGM_OBS_COUNT("serve.shed", 1);
    done(ErrorResponse(
        req.id,
        Status::Unavailable(std::string("shed: ") + decision.shed_reason),
        decision.retry_after_ms));
    return;
  }
  HGM_OBS_COUNT("serve.admitted", 1);

  QueueItem item;
  item.request = std::move(parsed.value());
  item.done = std::move(done);
  item.budget_ms = decision.budget_ms;
  item.deadline =
      SteadyClock::now() + std::chrono::milliseconds(decision.budget_ms);
  item.cancel = std::make_shared<CancellationSource>();
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(item));
    HGM_OBS_GAUGE_SET("serve.queue_depth", queue_.size());
  }
  queue_cv_.NotifyAll();
}

std::string Server::Handle(const std::string& line) {
  struct Waiter {
    Mutex mu;
    CondVar cv;
    bool ready HGM_GUARDED_BY(mu) = false;
    std::string response HGM_GUARDED_BY(mu);
  };
  auto waiter = std::make_shared<Waiter>();
  Submit(line, [waiter](std::string response) {
    MutexLock lock(waiter->mu);
    waiter->response = std::move(response);
    waiter->ready = true;
    waiter->cv.NotifyAll();
  });
  MutexLock lock(waiter->mu);
  // The predicate reads guarded members; CondVar::Wait always runs it
  // with mu held, but the lambda is opaque to the analysis.
  waiter->cv.Wait(waiter->mu, [&]() HGM_NO_THREAD_SAFETY_ANALYSIS {
    return waiter->ready;
  });
  return waiter->response;
}

bool Server::draining() const { return admission_.closed(); }

void Server::BeginDrain() { admission_.CloseAdmissions(); }

void Server::Drain() {
  if (drained_) return;
  drained_ = true;
  BeginDrain();
  {
    MutexLock lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  queue_cv_.NotifyAll();
  JoinThreads();
  // Final checkpoint of every session, then the drain report — the
  // graceful half of the crash-recovery contract.
  Status cs = CheckpointAll();
  if (!cs.ok()) {
    std::cerr << "hgmine_serve: drain checkpoint failed: " << cs.message()
              << "\n";
  }
  WriteFinalReport(MsSince(start_time_));
}

void Server::CrashForTest() {
  {
    MutexLock lock(mu_);
    if (!started_) return;
    stopping_ = true;
    queue_.clear();  // queued requests vanish, like a kill -9
  }
  queue_cv_.NotifyAll();
  JoinThreads();
  drained_ = true;  // the destructor must not run a graceful drain
}

void Server::JoinThreads() {
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (watchdog_.joinable()) watchdog_.join();
  if (checkpointer_.joinable()) checkpointer_.join();
}

uint64_t Server::requests_handled() const {
  MutexLock lock(mu_);
  return handled_;
}

void Server::WorkerLoop(size_t worker_index) {
  // Each worker owns its pool: ThreadPool admits only one external
  // ParallelFor batch at a time, so sharing one across workers would
  // serialize (and race) them.  Size 1 runs chunks inline — right for
  // this box — while keeping the deterministic chunking seam.
  ThreadPool pool(1);
  (void)worker_index;
  for (;;) {
    QueueItem item;
    uint64_t ticket = 0;
    {
      MutexLock lock(mu_);
      // Predicate reads guarded members (see CondVar::Wait contract).
      queue_cv_.Wait(mu_, [&]() HGM_NO_THREAD_SAFETY_ANALYSIS {
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      item = std::move(queue_.front());
      queue_.pop_front();
      HGM_OBS_GAUGE_SET("serve.queue_depth", queue_.size());
      ticket = next_ticket_++;
      QueueItem watch;  // slim watchdog entry: deadline + cancel only
      watch.budget_ms = item.budget_ms;
      watch.deadline = item.deadline;
      watch.cancel = item.cancel;
      inflight_.emplace(ticket, std::move(watch));
    }

    const SteadyClock::time_point begin = SteadyClock::now();
    std::string response;
    if (begin >= item.deadline) {
      // The deadline elapsed while queued; shed late rather than burn a
      // worker on an answer the client has given up on.
      HGM_OBS_COUNT("serve.shed_expired", 1);
      response = ErrorResponse(
          item.request.id,
          Status::Unavailable("deadline elapsed in queue"),
          /*retry_after_ms=*/item.budget_ms);
    } else {
      const uint64_t remaining_ms = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              item.deadline - begin)
              .count());
      RunBudget budget =
          DeadlineBudget(remaining_ms, item.cancel->token());
      response = Execute(item.request, budget, &pool);
    }
    const uint64_t us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            SteadyClock::now() - begin)
            .count());
    HGM_OBS_OBSERVE("serve.request_us", us);

    item.done(response);
    admission_.OnFinish(item.budget_ms);
    {
      MutexLock lock(mu_);
      inflight_.erase(ticket);
      ++handled_;
    }
  }
}

void Server::WatchdogLoop() {
  const auto interval =
      std::chrono::milliseconds(config_.watchdog_interval_ms == 0
                                    ? 50
                                    : config_.watchdog_interval_ms);
  const auto grace = std::chrono::milliseconds(config_.watchdog_grace_ms);
  for (;;) {
    MutexLock lock(mu_);
    // Predicate reads guarded members (see CondVar::Wait contract).
    const bool finished =
        queue_cv_.WaitFor(mu_, interval, [&]() HGM_NO_THREAD_SAFETY_ANALYSIS {
          return stopping_ && queue_.empty() && inflight_.empty();
        });
    if (finished) return;
    const SteadyClock::time_point now = SteadyClock::now();
    for (auto& [ticket, item] : inflight_) {
      if (now >= item.deadline + grace && item.cancel != nullptr &&
          !item.cancel->token().cancelled()) {
        // A wedged worker is cancelled at its next budget boundary and
        // answers with a certified partial — the request dies, the
        // worker survives.
        item.cancel->RequestCancel();
        HGM_OBS_COUNT("serve.watchdog_cancels", 1);
      }
    }
  }
}

void Server::CheckpointerLoop() {
  const auto interval =
      std::chrono::milliseconds(config_.checkpoint_interval_ms);
  for (;;) {
    std::vector<std::shared_ptr<Session>> snapshot;
    {
      MutexLock lock(mu_);
      // Predicate reads guarded members (see CondVar::Wait contract).
      const bool stop =
          queue_cv_.WaitFor(mu_, interval, [&]() HGM_NO_THREAD_SAFETY_ANALYSIS {
            return stopping_;
          });
      if (stop) return;  // Drain runs its own final CheckpointAll
      snapshot.reserve(sessions_.size());
      for (const auto& [name, session] : sessions_) {
        snapshot.push_back(session);
      }
    }
    for (const std::shared_ptr<Session>& session : snapshot) {
      Status s = session->SaveWarm();
      if (!s.ok()) HGM_OBS_COUNT("serve.warm_save_errors", 1);
    }
  }
}

Result<std::shared_ptr<Session>> Server::FindSession(
    const std::string& name, bool recover_missing) {
  {
    MutexLock lock(mu_);
    auto it = sessions_.find(name);
    if (it != sessions_.end()) return it->second;
  }
  if (!recover_missing || config_.state_dir.empty()) {
    return Status::NotFound("unknown session '" + name + "'");
  }
  Result<std::unique_ptr<Session>> recovered =
      Session::Recover(name, session_options_);
  if (!recovered.ok()) {
    if (recovered.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("unknown session '" + name + "'");
    }
    return recovered.status();
  }
  std::shared_ptr<Session> session = std::move(recovered.value());
  MutexLock lock(mu_);
  auto [it, inserted] = sessions_.emplace(name, session);
  return it->second;  // a racing recovery won; use the resident one
}

std::string Server::Execute(const Request& req, const RunBudget& budget,
                            ThreadPool* pool) {
  obs::TraceSpan span(std::string("serve.") + OpName(req.op), "serve");
  switch (req.op) {
    case Op::kOpen: {
      {
        MutexLock lock(mu_);
        if (sessions_.count(req.session) > 0) {
          return ErrorResponse(
              req.id, Status::FailedPrecondition(
                          "session '" + req.session + "' already open"));
        }
      }
      Result<std::unique_ptr<Session>> opened =
          Session::Open(req, session_options_);
      if (!opened.ok()) return ErrorResponse(req.id, opened.status());
      std::shared_ptr<Session> session = std::move(opened.value());
      {
        MutexLock lock(mu_);
        auto [it, inserted] = sessions_.emplace(req.session, session);
        if (!inserted) {
          return ErrorResponse(
              req.id, Status::FailedPrecondition(
                          "session '" + req.session + "' already open"));
        }
      }
      return OkResponse(
          req.id,
          {{"session", JsonValue::String(req.session)},
           {"stream", JsonValue::Bool(session->is_stream())},
           {"items", JsonValue::Number(
                         static_cast<double>(session->num_items()))}});
    }
    case Op::kPush: {
      Result<std::shared_ptr<Session>> found =
          FindSession(req.session, /*recover_missing=*/true);
      if (!found.ok()) return ErrorResponse(req.id, found.status());
      Result<PushOutcome> pushed =
          found.value()->Append(req.rows, budget, pool);
      if (!pushed.ok()) return ErrorResponse(req.id, pushed.status());
      const PushOutcome& out = pushed.value();
      std::vector<std::pair<std::string, JsonValue>> fields;
      fields.emplace_back(
          "consumed",
          JsonValue::Number(static_cast<double>(out.consumed)));
      std::vector<JsonValue> boundaries;
      boundaries.reserve(out.boundaries.size());
      for (const StreamWindowResult& b : out.boundaries) {
        boundaries.push_back(BoundaryToJson(b, req.full));
      }
      fields.emplace_back("boundaries",
                          JsonValue::Array(std::move(boundaries)));
      if (out.degraded) {
        HGM_OBS_COUNT("serve.degraded", 1);
        fields.emplace_back("degraded", JsonValue::Bool(true));
        fields.emplace_back(
            "stop_reason",
            JsonValue::String(StopReasonName(out.stop_reason)));
      }
      return OkResponse(req.id, std::move(fields));
    }
    case Op::kMine:
    case Op::kBorder: {
      Result<std::shared_ptr<Session>> found =
          FindSession(req.session, /*recover_missing=*/true);
      if (!found.ok()) return ErrorResponse(req.id, found.status());
      std::optional<ChaosSpec> chaos;
      if (req.chaos_seed.has_value()) {
        chaos = ChaosSpec{*req.chaos_seed, req.chaos_rate,
                          req.chaos_permanent_rate};
      }
      Result<MineAnswer> mined = found.value()->Mine(
          req.min_support, req.op == Op::kBorder ? 0 : req.shards, budget,
          pool, chaos);
      if (!mined.ok()) return ErrorResponse(req.id, mined.status());
      if (mined.value().degraded) HGM_OBS_COUNT("serve.degraded", 1);
      std::vector<std::pair<std::string, JsonValue>> fields;
      AppendAnswerFields(mined.value(), req.full, &fields);
      return OkResponse(req.id, std::move(fields));
    }
    case Op::kSupport: {
      Result<std::shared_ptr<Session>> found =
          FindSession(req.session, /*recover_missing=*/true);
      if (!found.ok()) return ErrorResponse(req.id, found.status());
      Result<size_t> support = found.value()->SupportOf(req.itemset);
      if (!support.ok()) return ErrorResponse(req.id, support.status());
      return OkResponse(
          req.id, {{"support", JsonValue::Number(static_cast<double>(
                                   support.value()))}});
    }
    case Op::kRules: {
      Result<std::shared_ptr<Session>> found =
          FindSession(req.session, /*recover_missing=*/true);
      if (!found.ok()) return ErrorResponse(req.id, found.status());
      MineAnswer answer;
      Result<std::vector<AssociationRule>> rules = found.value()->Rules(
          req.min_support, req.min_conf, budget, pool, &answer);
      if (!rules.ok()) return ErrorResponse(req.id, rules.status());
      std::vector<JsonValue> rendered;
      rendered.reserve(rules.value().size());
      for (const AssociationRule& r : rules.value()) {
        rendered.push_back(JsonValue::Object(
            {{"antecedent", ItemsetToJson(r.antecedent)},
             {"consequent",
              JsonValue::Number(static_cast<double>(r.consequent))},
             {"support",
              JsonValue::Number(static_cast<double>(r.support))},
             {"confidence", JsonValue::Number(r.confidence)}}));
      }
      std::vector<std::pair<std::string, JsonValue>> fields;
      fields.emplace_back(
          "rule_count",
          JsonValue::Number(static_cast<double>(rendered.size())));
      fields.emplace_back("rules", JsonValue::Array(std::move(rendered)));
      if (answer.degraded) {
        HGM_OBS_COUNT("serve.degraded", 1);
        fields.emplace_back("degraded", JsonValue::Bool(true));
        fields.emplace_back(
            "stop_reason",
            JsonValue::String(StopReasonName(answer.stop_reason)));
      }
      return OkResponse(req.id, std::move(fields));
    }
    case Op::kSleep: {
      if (!config_.enable_test_ops) {
        return ErrorResponse(
            req.id, Status::FailedPrecondition(
                        "test ops disabled (--enable-test-ops)"));
      }
      // Cooperative wedge: sleeps in slices, honoring cancellation and
      // the deadline like a real miner loop — the watchdog test vehicle.
      BudgetTracker tracker(budget);
      const SteadyClock::time_point until =
          SteadyClock::now() + std::chrono::milliseconds(req.sleep_ms);
      while (SteadyClock::now() < until) {
        StopReason r = tracker.CheckBoundary();
        if (r != StopReason::kCompleted) {
          HGM_OBS_COUNT("serve.degraded", 1);
          return OkResponse(
              req.id,
              {{"degraded", JsonValue::Bool(true)},
               {"stop_reason", JsonValue::String(StopReasonName(r))}});
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      return OkResponse(req.id, {{"slept_ms", JsonValue::Number(
                                     static_cast<double>(req.sleep_ms))}});
    }
    default:
      return ErrorResponse(
          req.id, Status::Internal("control op reached the worker path"));
  }
}

std::string Server::HandleControl(const Request& req) {
  switch (req.op) {
    case Op::kPing:
      return OkResponse(req.id, {{"pong", JsonValue::Bool(true)}});
    case Op::kStats: {
      std::vector<std::shared_ptr<Session>> snapshot;
      size_t queue_depth = 0;
      uint64_t handled = 0;
      {
        MutexLock lock(mu_);
        snapshot.reserve(sessions_.size());
        for (const auto& [name, session] : sessions_) {
          snapshot.push_back(session);
        }
        queue_depth = queue_.size();
        handled = handled_;
      }
      std::vector<JsonValue> sessions;
      sessions.reserve(snapshot.size());
      for (const std::shared_ptr<Session>& session : snapshot) {
        sessions.push_back(JsonValue::Object(session->StatsFields()));
      }
      return OkResponse(
          req.id,
          {{"sessions", JsonValue::Array(std::move(sessions))},
           {"queue_depth",
            JsonValue::Number(static_cast<double>(queue_depth))},
           {"inflight", JsonValue::Number(static_cast<double>(
                            admission_.admitted_inflight()))},
           {"handled", JsonValue::Number(static_cast<double>(handled))},
           {"draining", JsonValue::Bool(draining())}});
    }
    case Op::kScrape: {
      // The Prometheus text rides the same socket as a JSON string —
      // one transport, no second port to firewall.
      std::ostringstream os;
      obs::WritePrometheus(obs::MetricsRegistry::Global().Snapshot(), os);
      return OkResponse(req.id,
                        {{"prometheus", JsonValue::String(os.str())}});
    }
    case Op::kCheckpoint: {
      Status s = CheckpointAll();
      if (!s.ok()) return ErrorResponse(req.id, s);
      size_t count = 0;
      {
        MutexLock lock(mu_);
        count = sessions_.size();
      }
      return OkResponse(req.id, {{"checkpointed", JsonValue::Number(
                                     static_cast<double>(count))}});
    }
    case Op::kClose: {
      Result<std::shared_ptr<Session>> found =
          FindSession(req.session, /*recover_missing=*/false);
      if (!found.ok()) return ErrorResponse(req.id, found.status());
      Status s = found.value()->SaveWarm();
      if (!s.ok()) return ErrorResponse(req.id, s);
      {
        MutexLock lock(mu_);
        sessions_.erase(req.session);
      }
      return OkResponse(req.id,
                        {{"closed", JsonValue::String(req.session)}});
    }
    case Op::kShutdown:
      BeginDrain();
      return OkResponse(req.id, {{"draining", JsonValue::Bool(true)}});
    default:
      return ErrorResponse(
          req.id, Status::Internal("data op reached the control path"));
  }
}

Status Server::CheckpointAll() {
  std::vector<std::shared_ptr<Session>> snapshot;
  {
    MutexLock lock(mu_);
    snapshot.reserve(sessions_.size());
    for (const auto& [name, session] : sessions_) {
      snapshot.push_back(session);
    }
  }
  Status first_error = Status::OK();
  for (const std::shared_ptr<Session>& session : snapshot) {
    Status s = session->SaveWarm();
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

void Server::WriteFinalReport(uint64_t wall_ms) {
  if (config_.final_report_path.empty()) return;
  obs::RunReport report;
  report.kind = "serve";
  report.name = "hgmine_serve";
  report.host = obs::CollectHostInfo();
  report.build = obs::CollectBuildInfo();
  report.wall_ms = static_cast<double>(wall_ms);
  report.AddConfig("workers",
                   static_cast<uint64_t>(config_.workers == 0
                                             ? 1
                                             : config_.workers));
  report.AddConfig("max_queue",
                   static_cast<uint64_t>(config_.admission.max_queue));
  report.AddConfig("max_inflight_ms", config_.admission.max_inflight_ms);
  report.AddConfig("checkpoint_interval_ms",
                   config_.checkpoint_interval_ms);
  report.AddConfig("state_dir", config_.state_dir);
  size_t session_count = 0;
  uint64_t handled = 0;
  {
    MutexLock lock(mu_);
    session_count = sessions_.size();
    handled = handled_;
  }
  std::ostringstream payload;
  payload << "\"requests_handled\": " << handled
          << ", \"sessions\": " << session_count;
  report.payload_members = payload.str();
  report.phases = obs::Tracer::Global().PhaseTotals();
  if (obs::MetricsOn()) {
    report.metrics = obs::MetricsRegistry::Global().Snapshot();
  }
  report.flight = obs::FlightRecorder::Global().Snapshot();

  if (config_.final_report_path == "-") {
    report.WriteJson(std::cout);
    std::cout << "\n";
    return;
  }
  std::ofstream out(config_.final_report_path,
                    std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "hgmine_serve: cannot write final report to "
              << config_.final_report_path << "\n";
    return;
  }
  report.WriteJson(out);
  out << "\n";
}

}  // namespace serve
}  // namespace hgm
