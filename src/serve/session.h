#pragma once

/// \file session.h
/// \brief One resident mining session: warm state, queries, persistence.
///
/// A session is the unit the service keeps resident between requests —
/// the theory-and-borders state the paper's query model assumes a caller
/// maintains across many Is-interesting questions.  Two shapes:
///
///   * **batch**: a TransactionDatabase plus a small LRU of completed
///     mining results keyed by min_support, so repeated mine/rules/border
///     queries at the same threshold answer from memory;
///   * **stream**: a StreamMiner whose window advances as rows are
///     pushed, with budget-tripped boundary repairs parked as a pending
///     checkpoint and resumed by the next push (certified-prefix
///     semantics end to end).
///
/// Persistence is write-ahead: every accepted row is appended to
/// `<state_dir>/<name>.wal` (basket text behind a metadata comment
/// header) and flushed before the request is acknowledged, so the WAL
/// alone rebuilds the session bit-identically after `kill -9` — batch
/// sessions reload it as a database, stream sessions *replay* it through
/// the same Push/AdvanceWindow path (deterministic, so the rebuilt
/// borders and tilted history match exactly).  Warm state rides along as
/// an optional PR5-format checkpoint (`<name>.session` + one
/// `<name>.mine.<minsup>.ckpt` per interrupted mine) written by the
/// periodic checkpointer: it spares the restarted server re-mining, and
/// a budget-tripped mine resumes mid-lattice instead of restarting.  A
/// stale or missing warm file is never an error — the WAL is the truth,
/// warm state just an accelerator (adopted only when its logged row
/// count matches the WAL).
///
/// Threading: every public method locks the session's own mutex, so
/// workers, the watchdog-cancelled retries, and the checkpointer can hit
/// one session concurrently; long mining calls run *under* the lock and
/// rely on the request budget's CancellationToken (flipped by the
/// watchdog) to bound how long they hold it.

#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/run_budget.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "mining/apriori.h"
#include "mining/rules.h"
#include "mining/stream.h"
#include "obs/json.h"
#include "serve/protocol.h"

namespace hgm {
namespace serve {

/// Per-session knobs inherited from the server config.
struct SessionOptions {
  /// Directory for WAL + warm checkpoints; empty = ephemeral session.
  std::string state_dir;
  /// Completed mining results kept per session (LRU by min_support).
  size_t mine_cache_capacity = 4;
  /// Failover policy for sharded mines.
  RetryPolicy shard_retry;
};

/// Outcome of a mine/border query (rules go through the same path).
struct MineAnswer {
  std::vector<FrequentItemset> frequent;
  std::vector<Bitset> maximal;
  std::vector<Bitset> negative_border;
  /// True when the answer is a certified partial theory: a budget
  /// tripped (stop_reason) or shards failed past retry (failed_shards).
  bool degraded = false;
  StopReason stop_reason = StopReason::kCompleted;
  std::vector<size_t> failed_shards;
  uint64_t shard_retries = 0;
  bool from_cache = false;
  bool resumed = false;  ///< continued from a parked partial-mine checkpoint
  uint64_t evaluations = 0;
};

/// Outcome of appending rows (stream boundaries included).
struct PushOutcome {
  /// Rows accepted and WAL-logged; on a degraded outcome the client
  /// re-sends rows[consumed:].
  size_t consumed = 0;
  /// Window boundaries completed during this append (batch: 0).
  std::vector<StreamWindowResult> boundaries;
  /// True when a boundary repair tripped its budget mid-append: the
  /// repair is parked (resumed by the next push) and unconsumed rows
  /// were not touched.
  bool degraded = false;
  StopReason stop_reason = StopReason::kCompleted;
};

/// Seeded shard-fault injection carried by a mine request (chaos tests).
struct ChaosSpec {
  uint64_t seed = 0;
  double transient_rate = 0.4;
  double permanent_rate = 0.0;
};

class Session {
 public:
  /// Opens a fresh session from an `open` request (inline rows, a basket
  /// file, or a stream spec) and writes the WAL when persistent.
  static Result<std::unique_ptr<Session>> Open(const Request& req,
                                               const SessionOptions& options);

  /// Rebuilds a session from `<state_dir>/<name>.wal`, adopting warm
  /// checkpoints when they match the log.
  static Result<std::unique_ptr<Session>> Recover(
      const std::string& name, const SessionOptions& options);

  const std::string& name() const { return name_; }
  bool is_stream() const { return miner_ != nullptr; }
  size_t num_items() const { return num_items_; }

  /// Appends rows; stream sessions advance (or resume) window boundaries
  /// under \p budget.  Rows are validated against the declared universe.
  Result<PushOutcome> Append(const std::vector<std::vector<size_t>>& rows,
                             const RunBudget& budget, ThreadPool* pool)
      HGM_EXCLUDES(mu_);

  /// Mines at \p min_support (shards > 0 = partitioned with failover).
  /// Serves from cache when a completed result is resident; resumes a
  /// parked partial mine when one matches (min_support, shards, rows).
  Result<MineAnswer> Mine(size_t min_support, size_t shards,
                          const RunBudget& budget, ThreadPool* pool,
                          const std::optional<ChaosSpec>& chaos)
      HGM_EXCLUDES(mu_);

  /// Exact support of one itemset in the current rows/window.
  Result<size_t> SupportOf(const std::vector<size_t>& itemset)
      HGM_EXCLUDES(mu_);

  /// Association rules from the theory at (min_support, min_conf); mines
  /// (or resumes/caches) through the Mine path first.  \p answer_out
  /// receives the underlying mine answer (degradation flags).
  Result<std::vector<AssociationRule>> Rules(
      size_t min_support, double min_conf, const RunBudget& budget,
      ThreadPool* pool, MineAnswer* answer_out) HGM_EXCLUDES(mu_);

  /// Writes the warm checkpoint(s) when persistent and dirty; the WAL is
  /// already on disk (flushed per append).  Safe to call concurrently
  /// with queries — takes the session lock.
  Status SaveWarm() HGM_EXCLUDES(mu_);

  /// Key/value stats for the `stats` response.
  std::vector<std::pair<std::string, obs::JsonValue>> StatsFields()
      HGM_EXCLUDES(mu_);

  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

 private:
  Session() = default;

  std::string WalPath() const { return state_dir_ + "/" + name_ + ".wal"; }
  std::string WarmPath() const {
    return state_dir_ + "/" + name_ + ".session";
  }
  std::string PendingMinePath(size_t min_support) const {
    return state_dir_ + "/" + name_ + ".mine." +
           std::to_string(min_support) + ".ckpt";
  }

  /// Opens the WAL for appending, writing the metadata header when the
  /// file is fresh.
  Status OpenWal(bool fresh) HGM_REQUIRES(mu_);
  /// Appends one row to the WAL and flushes (the pre-ack durability
  /// point).
  Status LogRow(const Bitset& row) HGM_REQUIRES(mu_);

  Result<MineAnswer> MineLocked(size_t min_support, size_t shards,
                                const RunBudget& budget, ThreadPool* pool,
                                const std::optional<ChaosSpec>& chaos)
      HGM_REQUIRES(mu_);

  /// Parks a tripped mine's checkpoint for later resume (and for the
  /// warm checkpointer to persist).
  void ParkMine(size_t min_support, size_t shards, Checkpoint checkpoint)
      HGM_REQUIRES(mu_);
  /// Caches a completed clean mine and maintains the LRU cap.
  void CacheMine(size_t min_support, AprioriResult result)
      HGM_REQUIRES(mu_);
  void InvalidateDerivedState() HGM_REQUIRES(mu_);

  std::string name_;
  std::string state_dir_;  // empty = ephemeral
  SessionOptions options_;
  size_t num_items_ = 0;

  mutable Mutex mu_;
  /// Batch state (null for stream sessions).
  std::unique_ptr<TransactionDatabase> db_ HGM_GUARDED_BY(mu_);
  /// Stream state (null for batch sessions).
  std::unique_ptr<StreamMiner> miner_ HGM_GUARDED_BY(mu_);
  /// Parked budget-tripped boundary repair (stream).
  std::optional<Checkpoint> pending_repair_ HGM_GUARDED_BY(mu_);
  /// Completed clean results by min_support, LRU order in cache_order_.
  std::map<size_t, AprioriResult> cache_ HGM_GUARDED_BY(mu_);
  std::vector<size_t> cache_order_ HGM_GUARDED_BY(mu_);
  /// Parked budget-tripped mines by min_support (checkpoint carries
  /// serve_rows/serve_shards scalars for staleness checks).
  std::map<size_t, Checkpoint> pending_mines_ HGM_GUARDED_BY(mu_);
  /// Rows durably logged (== rows accepted since open).
  uint64_t rows_logged_ HGM_GUARDED_BY(mu_) = 0;
  /// Warm state diverged from the last SaveWarm.
  bool dirty_ HGM_GUARDED_BY(mu_) = false;
  std::FILE* wal_ HGM_GUARDED_BY(mu_) = nullptr;
};

}  // namespace serve
}  // namespace hgm
