#include "serve/admission.h"

#include "obs/metrics.h"

namespace hgm {
namespace serve {

AdmissionDecision AdmissionController::TryAdmit(
    uint64_t requested_deadline_ms) {
  uint64_t budget = requested_deadline_ms == 0
                        ? config_.default_deadline_ms
                        : requested_deadline_ms;
  if (budget > config_.max_deadline_ms) budget = config_.max_deadline_ms;

  MutexLock lock(mu_);
  AdmissionDecision d;
  if (closed_) {
    d.shed_reason = "draining";
    d.retry_after_ms = 0;  // do not retry a draining server
    HGM_OBS_COUNT("serve.shed_draining", 1);
    return d;
  }
  if (inflight_ >= config_.max_queue) {
    d.shed_reason = "queue_full";
    d.retry_after_ms = RetryAfterMs();
    HGM_OBS_COUNT("serve.shed_queue_full", 1);
    return d;
  }
  if (inflight_ms_ + budget > config_.max_inflight_ms) {
    d.shed_reason = "inflight_budget";
    d.retry_after_ms = RetryAfterMs();
    HGM_OBS_COUNT("serve.shed_inflight_budget", 1);
    return d;
  }
  ++inflight_;
  inflight_ms_ += budget;
  d.admitted = true;
  d.budget_ms = budget;
  HGM_OBS_GAUGE_SET("serve.inflight", inflight_);
  return d;
}

void AdmissionController::OnFinish(uint64_t budget_ms) {
  MutexLock lock(mu_);
  if (inflight_ > 0) --inflight_;
  inflight_ms_ = inflight_ms_ > budget_ms ? inflight_ms_ - budget_ms : 0;
  HGM_OBS_GAUGE_SET("serve.inflight", inflight_);
}

void AdmissionController::CloseAdmissions() {
  MutexLock lock(mu_);
  closed_ = true;
}

bool AdmissionController::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

size_t AdmissionController::admitted_inflight() const {
  MutexLock lock(mu_);
  return inflight_;
}

uint64_t AdmissionController::inflight_ms() const {
  MutexLock lock(mu_);
  return inflight_ms_;
}

uint64_t AdmissionController::RetryAfterMs() const {
  const size_t workers = config_.workers == 0 ? 1 : config_.workers;
  const uint64_t drain = inflight_ms_ / workers;
  return drain < 10 ? 10 : drain;
}

}  // namespace serve
}  // namespace hgm
